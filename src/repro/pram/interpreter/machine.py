"""Lock-step execution of assembled programs on a PRAM machine.

Synchronous rounds: every non-halted processor executes the instruction
at its own PC (control flow may diverge — SPMD, not SIMD).  Per round:

1. all processors whose instruction is ``load`` issue one combined PRAM
   *read step* (others idle);
2. all processors whose instruction is ``store`` issue one combined PRAM
   *write step*;
3. pure register instructions execute locally (tracked as local rounds,
   free of memory cost — the PRAM charges for shared-memory access).

Execution is vectorized by grouping processors with equal PCs, so the
common all-aligned case costs one NumPy pass per round.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pram.interpreter.isa import NUM_REGISTERS, Operand, Program
from repro.pram.machine import IDLE, PRAMMachine

__all__ = ["Interpreter", "MachineState"]


@dataclass
class MachineState:
    """Architectural state after (or during) a run."""

    registers: np.ndarray  # (P, NUM_REGISTERS) int64
    pc: np.ndarray  # (P,) int64
    halted: np.ndarray  # (P,) bool
    rounds: int = 0
    read_steps: int = 0
    write_steps: int = 0
    local_rounds: int = 0

    @property
    def all_halted(self) -> bool:
        return bool(self.halted.all())


class Interpreter:
    """Runs a :class:`Program` on a :class:`PRAMMachine`."""

    def __init__(self, machine: PRAMMachine):
        self.machine = machine

    def _operand_values(
        self, op: Operand, regs: np.ndarray, procs: np.ndarray
    ) -> np.ndarray:
        if op.kind == "reg":
            return regs[procs, op.value]
        if op.kind == "imm":
            return np.full(procs.size, op.value, dtype=np.int64)
        if op.kind == "pid":
            return procs.astype(np.int64)
        if op.kind == "nproc":
            return np.full(procs.size, self.machine.num_processors, dtype=np.int64)
        raise AssertionError(f"unknown operand kind {op.kind}")

    def run(
        self,
        program: Program,
        *,
        max_rounds: int = 100_000,
        registers: np.ndarray | None = None,
    ) -> MachineState:
        """Execute until every processor halts (or fall off the end).

        ``registers`` optionally pre-loads initial register values,
        shape ``(P, NUM_REGISTERS)``.
        """
        P = self.machine.num_processors
        regs = np.zeros((P, NUM_REGISTERS), dtype=np.int64)
        if registers is not None:
            registers = np.asarray(registers, dtype=np.int64)
            if registers.shape != regs.shape:
                raise ValueError(f"registers must have shape {regs.shape}")
            regs[:] = registers
        state = MachineState(
            registers=regs,
            pc=np.zeros(P, dtype=np.int64),
            halted=np.zeros(P, dtype=bool),
        )
        code = program.instructions
        while not state.all_halted:
            if state.rounds >= max_rounds:
                raise RuntimeError(f"program exceeded {max_rounds} rounds")
            self._round(code, state)
            state.rounds += 1
        return state

    # -- one synchronous round ------------------------------------------------

    def _round(self, code, state: MachineState) -> None:
        active = np.nonzero(~state.halted)[0]
        # Falling off the end halts the processor.
        off_end = active[state.pc[active] >= len(code)]
        if off_end.size:
            state.halted[off_end] = True
            active = np.nonzero(~state.halted)[0]
            if active.size == 0:
                return

        ops = np.array([code[state.pc[p]].op for p in active])

        # Memory phase: the round's loads and stores fuse into ONE PRAM
        # step (the paper's "each processor reads or writes" step) — on
        # the mesh backend a single culling pass and routed journey.
        loaders = active[ops == "load"]
        storers = active[ops == "store"]
        if loaders.size or storers.size:
            self._memory_phase(code, state, loaders, storers)
            if loaders.size:
                state.read_steps += 1
            if storers.size:
                state.write_steps += 1
        else:
            state.local_rounds += 1

        # Local instructions, grouped by PC for vectorized execution.
        locals_mask = (ops != "load") & (ops != "store")
        local_procs = active[locals_mask]
        for pc_val in np.unique(state.pc[local_procs]):
            procs = local_procs[state.pc[local_procs] == pc_val]
            self._execute_local(code[pc_val], state, procs)
        # loads/stores advance linearly.
        for procs in (loaders, storers):
            if procs.size:
                state.pc[procs] += 1

    def _memory_phase(
        self, code, state, loaders: np.ndarray, storers: np.ndarray
    ) -> None:
        """Issue the round's loads and stores as one fused PRAM step."""
        P = self.machine.num_processors
        read_addrs = np.full(P, IDLE, dtype=np.int64)
        dest = np.zeros(P, dtype=np.int64)
        for p in loaders:
            instr = code[state.pc[p]]
            read_addrs[p] = self._operand_values(
                instr.operands[1], state.registers, np.array([p])
            )[0]
            dest[p] = instr.operands[0].value
        write_addrs = np.full(P, IDLE, dtype=np.int64)
        vals = np.zeros(P, dtype=np.int64)
        for p in storers:
            instr = code[state.pc[p]]
            write_addrs[p] = self._operand_values(
                instr.operands[0], state.registers, np.array([p])
            )[0]
            vals[p] = self._operand_values(
                instr.operands[1], state.registers, np.array([p])
            )[0]
        values = self.machine.step(read_addrs, write_addrs, vals)
        if loaders.size:
            state.registers[loaders, dest[loaders]] = values[loaders]

    def _execute_local(self, instr, state, procs: np.ndarray) -> None:
        regs = state.registers
        op = instr.op
        if op == "halt":
            state.halted[procs] = True
            return
        next_pc = state.pc[procs] + 1
        if op == "nop":
            pass
        elif op == "li" or op == "mov":
            regs[procs, instr.operands[0].value] = self._operand_values(
                instr.operands[1], regs, procs
            )
        elif op in (
            "add", "sub", "mul", "div", "mod", "min", "max",
            "and", "or", "xor", "shl", "shr",
        ):
            a = self._operand_values(instr.operands[1], regs, procs)
            b = self._operand_values(instr.operands[2], regs, procs)
            if op in ("div", "mod") and np.any(b == 0):
                bad = procs[b == 0][0]
                raise ZeroDivisionError(
                    f"processor {bad}: {op} by zero at line {instr.line}"
                )
            if op in ("shl", "shr") and np.any((b < 0) | (b > 63)):
                bad = procs[(b < 0) | (b > 63)][0]
                raise ValueError(
                    f"processor {bad}: shift count out of [0, 63] at line {instr.line}"
                )
            fn = {
                "add": np.add, "sub": np.subtract, "mul": np.multiply,
                "div": np.floor_divide, "mod": np.mod,
                "min": np.minimum, "max": np.maximum,
                "and": np.bitwise_and, "or": np.bitwise_or,
                "xor": np.bitwise_xor,
                "shl": np.left_shift, "shr": np.right_shift,
            }[op]
            regs[procs, instr.operands[0].value] = fn(a, b)
        elif op == "jmp":
            next_pc = np.full(procs.size, instr.operands[0].value, dtype=np.int64)
        elif op in ("beq", "bne", "blt", "bge"):
            a = self._operand_values(instr.operands[0], regs, procs)
            b = self._operand_values(instr.operands[1], regs, procs)
            cond = {
                "beq": a == b, "bne": a != b, "blt": a < b, "bge": a >= b,
            }[op]
            next_pc = np.where(cond, instr.operands[2].value, next_pc)
        else:  # pragma: no cover - assembler guarantees known ops
            raise AssertionError(f"unhandled op {op}")
        state.pc[procs] = next_pc

"""Assembly kernels for the PRAM interpreter.

Written in the SPMD assembly of :mod:`repro.pram.interpreter.isa`;
shared-memory layouts are documented per program.  Used by tests and the
interpreter example — running these on a :class:`repro.pram.MeshBackend`
simulates genuine instruction-level PRAM computation on the mesh.
"""

from __future__ import annotations

from repro.pram.interpreter.isa import Program, assemble

__all__ = ["vector_scale", "sum_reduction", "array_reverse", "histogram"]


def vector_scale(factor: int) -> Program:
    """``MEM[i] <- factor * MEM[i]`` for i = pid (array of nproc cells at 0)."""
    return assemble(f"""
        # each processor scales its own cell
        load  r1, pid
        mul   r1, r1, {factor}
        store pid, r1
        halt
    """)


def sum_reduction() -> Program:
    """Tree-sum the nproc-cell array at address 0; result lands in MEM[0].

    Classic log-depth pairwise reduction: at stride s, processors with
    ``pid % 2s == 0`` add in the cell s away.  Requires nproc a power of
    two.
    """
    return assemble("""
        li   r1, 1              # stride
    loop:
        bge  r1, nproc, done
        mul  r2, r1, 2          # group size
        mod  r3, pid, r2
        bne  r3, 0, skip        # only group leaders act
        add  r4, pid, r1
        bge  r4, nproc, skip
        load r5, pid
        load r6, r4
        add  r5, r5, r6
        store pid, r5
    skip:
        mul  r1, r1, 2
        jmp  loop
    done:
        halt
    """)


def array_reverse() -> Program:
    """Reverse the nproc-cell array at 0 into the nproc cells at nproc."""
    return assemble("""
        load r1, pid
        li   r2, 0
        sub  r3, nproc, 1
        sub  r3, r3, pid        # mirror index
        add  r3, r3, nproc      # destination base nproc
        store r3, r1
        halt
    """)


def histogram(buckets: int) -> Program:
    """Count values into ``buckets`` bins.

    Layout: input array (nproc cells at 0) holds small non-negative
    values; bins live at ``nproc .. nproc + buckets``.  Each processor
    claims bin b on round b via priority-CRCW writes of partial counts —
    a deliberately concurrent-write-heavy kernel.  For test simplicity
    every processor serially scans the input for its own bin value
    (processors with pid >= buckets idle), so the run takes O(nproc)
    memory steps and exercises heavy concurrent reads.
    """
    return assemble(f"""
        bge  r1, 1, end          # r1 starts 0: fallthrough guard (never taken)
        bge  pid, {buckets}, end # only the first `buckets` processors count
        li   r2, 0               # count
        li   r3, 0               # index
    scan:
        bge  r3, nproc, emit
        load r4, r3
        bne  r4, pid, next       # bin id == pid
        add  r2, r2, 1
    next:
        add  r3, r3, 1
        jmp  scan
    emit:
        add  r5, pid, nproc
        store r5, r2
    end:
        halt
    """)

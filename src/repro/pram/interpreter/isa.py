"""Instruction set and assembler for the PRAM interpreter.

A tiny SPMD assembly: every processor executes the same program text
over its own 16 registers ``r0..r15`` plus the read-only specials
``pid`` (processor id) and ``nproc``.  One shared-memory access per
instruction, matching the PRAM definition.

Syntax (case-insensitive mnemonics, ``#`` or ``;`` comments, labels end
with ``:``)::

    li    rd, imm          rd <- imm
    mov   rd, rs           rd <- rs
    add   rd, ra, b        rd <- ra + b      (b: register or immediate)
    sub   rd, ra, b        likewise: mul, div (floor), mod, min, max,
                           and, or, xor, shl, shr (shift counts in [0,63])
    load  rd, ra           rd <- MEM[ra]     (ra: register or immediate)
    store ra, b            MEM[ra] <- b
    beq   ra, b, label     branch if ra == b (also bne, blt, bge)
    jmp   label
    nop
    halt

Addresses and values are int64.  ``div``/``mod`` follow Python (floor)
semantics; division by zero raises at run time with the processor id.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["AssemblyError", "Instruction", "Program", "assemble", "NUM_REGISTERS"]

NUM_REGISTERS = 16

# opcode -> (operand pattern)
#   R = register destination, S = register-or-immediate source,
#   A = register-or-immediate address, L = label
_FORMATS = {
    "li": "RS",
    "mov": "RS",
    "add": "RSS",
    "sub": "RSS",
    "mul": "RSS",
    "div": "RSS",
    "mod": "RSS",
    "min": "RSS",
    "max": "RSS",
    "and": "RSS",
    "or": "RSS",
    "xor": "RSS",
    "shl": "RSS",
    "shr": "RSS",
    "load": "RA",
    "store": "AS",
    "beq": "SSL",
    "bne": "SSL",
    "blt": "SSL",
    "bge": "SSL",
    "jmp": "L",
    "nop": "",
    "halt": "",
}

MEMORY_OPS = frozenset({"load", "store"})
BRANCH_OPS = frozenset({"beq", "bne", "blt", "bge", "jmp"})


class AssemblyError(ValueError):
    """Raised on malformed assembly, with the offending line number."""


@dataclass(frozen=True)
class Operand:
    """Either a register index, an immediate, or a special register."""

    kind: str  # "reg", "imm", "pid", "nproc"
    value: int = 0


@dataclass(frozen=True)
class Instruction:
    """One decoded instruction."""

    op: str
    operands: tuple[Operand, ...]
    line: int  # source line, for diagnostics


@dataclass(frozen=True)
class Program:
    """Assembled program: instructions plus the resolved label map."""

    instructions: tuple[Instruction, ...]
    labels: dict[str, int]
    source: str

    def __len__(self) -> int:
        return len(self.instructions)


def _parse_operand(token: str, line_no: int) -> Operand:
    token = token.strip().lower()
    if token == "pid":
        return Operand("pid")
    if token == "nproc":
        return Operand("nproc")
    if token.startswith("r") and token[1:].isdigit():
        idx = int(token[1:])
        if not 0 <= idx < NUM_REGISTERS:
            raise AssemblyError(f"line {line_no}: register {token} out of range")
        return Operand("reg", idx)
    try:
        return Operand("imm", int(token, 0))
    except ValueError:
        raise AssemblyError(f"line {line_no}: cannot parse operand {token!r}") from None


def _check_operand(op: Operand, pattern: str, line_no: int, pos: int) -> None:
    if pattern == "R" and op.kind != "reg":
        raise AssemblyError(
            f"line {line_no}: operand {pos + 1} must be a writable register"
        )
    # S and A accept registers, immediates and specials.


def assemble(source: str) -> Program:
    """Assemble program text into a :class:`Program`.

    Two passes: collect labels, then decode instructions and resolve
    branch targets (a label operand becomes an immediate PC).
    """
    lines = source.splitlines()
    labels: dict[str, int] = {}
    cleaned: list[tuple[int, str]] = []
    for no, raw in enumerate(lines, start=1):
        text = raw.split("#")[0].split(";")[0].strip()
        if not text:
            continue
        while text.endswith(":") or ":" in text.split()[0]:
            head, _, rest = text.partition(":")
            label = head.strip().lower()
            if not label.isidentifier():
                raise AssemblyError(f"line {no}: bad label {label!r}")
            if label in labels:
                raise AssemblyError(f"line {no}: duplicate label {label!r}")
            labels[label] = len(cleaned)
            text = rest.strip()
            if not text:
                break
        if text:
            cleaned.append((no, text))

    instructions: list[Instruction] = []
    for no, text in cleaned:
        parts = text.replace(",", " ").split()
        op = parts[0].lower()
        if op not in _FORMATS:
            raise AssemblyError(f"line {no}: unknown instruction {op!r}")
        pattern = _FORMATS[op]
        args = parts[1:]
        if len(args) != len(pattern):
            raise AssemblyError(
                f"line {no}: {op} expects {len(pattern)} operands, got {len(args)}"
            )
        operands: list[Operand] = []
        for pos, (arg, pat) in enumerate(zip(args, pattern)):
            if pat == "L":
                label = arg.strip().lower()
                if label not in labels:
                    raise AssemblyError(f"line {no}: undefined label {label!r}")
                operands.append(Operand("imm", labels[label]))
            else:
                parsed = _parse_operand(arg, no)
                _check_operand(parsed, pat, no, pos)
                operands.append(parsed)
        instructions.append(Instruction(op, tuple(operands), no))

    if not instructions:
        raise AssemblyError("empty program")
    return Program(tuple(instructions), labels, source)

"""An instruction-level PRAM interpreter.

The paper simulates "PRAM computation"; this subpackage makes that
literal: a synchronous register machine — every processor runs the same
program text (SPMD) over its own registers, with one shared-memory
access per step — whose LOAD/STORE phases are exactly the request sets
the mesh simulation consumes.

* :mod:`repro.pram.interpreter.isa` — the instruction set and assembler
  (a tiny, line-oriented assembly with labels).
* :mod:`repro.pram.interpreter.machine` — the lock-step interpreter
  driving a :class:`repro.pram.PRAMMachine` (ideal or mesh backend).
* :mod:`repro.pram.interpreter.programs` — assembly implementations of
  classic kernels, used by tests and examples.
"""

from repro.pram.interpreter.isa import AssemblyError, Instruction, Program, assemble
from repro.pram.interpreter.machine import Interpreter, MachineState

__all__ = [
    "AssemblyError",
    "Instruction",
    "Interpreter",
    "MachineState",
    "Program",
    "assemble",
]

"""The PRAM machine: synchronous step-level shared-memory access.

One :meth:`PRAMMachine.read` or :meth:`PRAMMachine.write` call is one
PRAM step: every processor issues at most one access (the sentinel
``IDLE = -1`` marks idle processors).  The machine

* combines concurrent reads (CREW/CRCW semantics): distinct cells are
  fetched once from the backend and fanned back out;
* resolves concurrent writes by the priority rule (lowest processor id
  wins), the strongest classical CRCW convention — algorithms written
  for weaker models (EREW/CREW) run unchanged;
* forwards the deduplicated, distinct-cell request set to the backend,
  which is exactly the shape Section 3's simulation consumes ("each of
  the n processors wants to read or write a distinct variable").
"""

from __future__ import annotations

import numpy as np

from repro.pram.backends import Backend
from repro.protocol.access import StepRequest

__all__ = ["IDLE", "PRAMMachine"]

IDLE = -1


#: Supported concurrent-access conventions, strongest to weakest:
#: priority-CRCW (lowest id wins), combining-CRCW (sum / max of the
#: conflicting values), CREW (concurrent writes are an error), EREW
#: (concurrent reads are an error too).
WRITE_POLICIES = ("priority", "sum", "max", "crew", "erew")


class PRAMMachine:
    """A P-processor PRAM over a pluggable memory backend.

    Parameters
    ----------
    backend : Backend
        Memory semantics + cost accounting.
    num_processors : int
        P; each step carries at most one request per processor.
    policy : str
        Concurrent-access convention (see ``WRITE_POLICIES``):
        ``"priority"`` (default) — lowest processor id wins write
        conflicts; ``"sum"``/``"max"`` — combining CRCW; ``"crew"`` —
        write conflicts raise; ``"erew"`` — read conflicts raise too.

    Attributes
    ----------
    pram_steps : int
        Number of PRAM steps executed so far.
    """

    def __init__(self, backend: Backend, num_processors: int, *, policy: str = "priority"):
        if num_processors < 1:
            raise ValueError("need at least one processor")
        if num_processors > backend.max_requests:
            raise ValueError(
                f"{num_processors} processors exceed backend capacity "
                f"{backend.max_requests}"
            )
        if policy not in WRITE_POLICIES:
            raise ValueError(f"policy must be one of {WRITE_POLICIES}, got {policy!r}")
        self.backend = backend
        self.num_processors = int(num_processors)
        self.policy = policy
        self.pram_steps = 0

    # -- step API ---------------------------------------------------------

    def _check_addrs(self, addrs) -> np.ndarray:
        addrs = np.asarray(addrs, dtype=np.int64)
        if addrs.shape != (self.num_processors,):
            raise ValueError(
                f"addrs must have shape ({self.num_processors},), got {addrs.shape}"
            )
        active = addrs != IDLE
        if np.any((addrs[active] < 0) | (addrs[active] >= self.backend.memory_size)):
            raise ValueError("address out of shared-memory range")
        return addrs

    def read(self, addrs) -> np.ndarray:
        """One parallel read step; idle processors get 0.

        Concurrent reads of the same cell are combined (all CREW/CRCW
        policies); under ``"erew"`` they raise instead.
        """
        addrs = self._check_addrs(addrs)
        out = np.zeros(self.num_processors, dtype=np.int64)
        active = np.nonzero(addrs != IDLE)[0]
        if active.size:
            unique, inverse = np.unique(addrs[active], return_inverse=True)
            if self.policy == "erew" and unique.size != active.size:
                raise RuntimeError("EREW violation: concurrent read")
            values = self.backend.read_step(unique)
            out[active] = values[inverse]
        self.pram_steps += 1
        return out

    def write(self, addrs, values) -> None:
        """One parallel write step; conflicts resolved per the policy."""
        addrs = self._check_addrs(addrs)
        values = np.broadcast_to(
            np.asarray(values, dtype=np.int64), (self.num_processors,)
        )
        active = np.nonzero(addrs != IDLE)[0]
        if active.size:
            unique, first_idx = np.unique(addrs[active], return_index=True)
            if self.policy in ("crew", "erew") and unique.size != active.size:
                raise RuntimeError(f"{self.policy.upper()} violation: concurrent write")
            if self.policy in ("sum", "max") and unique.size != active.size:
                # Combining CRCW: fold all conflicting values per cell.
                inverse = np.searchsorted(unique, addrs[active])
                combined = np.zeros(unique.size, dtype=np.int64)
                if self.policy == "sum":
                    np.add.at(combined, inverse, values[active])
                else:
                    combined[:] = np.iinfo(np.int64).min
                    np.maximum.at(combined, inverse, values[active])
                self.backend.write_step(unique, combined)
            else:
                # Priority resolution: first occurrence (lowest processor
                # id) of each address wins; also the conflict-free path.
                self.backend.write_step(unique, values[active][first_idx])
        self.pram_steps += 1

    def step(self, read_addrs, write_addrs, write_values) -> np.ndarray:
        """One full PRAM step: some processors read, others write.

        This is the canonical PRAM step shape ("each processor reads or
        writes one cell"): on the mesh backend it costs a *single*
        simulated journey instead of a read step plus a write step.  A
        processor may not do both in the same step (use two steps).
        Returns the values fetched by reading processors (0 elsewhere);
        readers of concurrently-written cells see the pre-step value.
        """
        read_addrs = self._check_addrs(read_addrs)
        write_addrs = self._check_addrs(write_addrs)
        both = (read_addrs != IDLE) & (write_addrs != IDLE)
        if np.any(both):
            raise ValueError(
                f"processor(s) {np.nonzero(both)[0][:5].tolist()} cannot read "
                "and write in the same step"
            )
        write_values = np.broadcast_to(
            np.asarray(write_values, dtype=np.int64), (self.num_processors,)
        )
        readers = np.nonzero(read_addrs != IDLE)[0]
        writers = np.nonzero(write_addrs != IDLE)[0]
        if self.policy == "erew":
            all_cells = np.concatenate([read_addrs[readers], write_addrs[writers]])
            if np.unique(all_cells).size != all_cells.size:
                raise RuntimeError("EREW violation: concurrent access")
        unique_r, inv_r = (
            np.unique(read_addrs[readers], return_inverse=True)
            if readers.size
            else (np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64))
        )
        # Resolve write conflicts by the machine's policy.
        if writers.size:
            w_cells, first_idx = np.unique(write_addrs[writers], return_index=True)
            if self.policy in ("crew",) and w_cells.size != writers.size:
                raise RuntimeError("CREW violation: concurrent write")
            if self.policy in ("sum", "max") and w_cells.size != writers.size:
                inverse = np.searchsorted(w_cells, write_addrs[writers])
                combined = np.zeros(w_cells.size, dtype=np.int64)
                if self.policy == "sum":
                    np.add.at(combined, inverse, write_values[writers])
                else:
                    combined[:] = np.iinfo(np.int64).min
                    np.maximum.at(combined, inverse, write_values[writers])
                w_vals = combined
            else:
                w_vals = write_values[writers][first_idx]
        else:
            w_cells = np.zeros(0, dtype=np.int64)
            w_vals = np.zeros(0, dtype=np.int64)

        fetched = self.backend.mixed_step(unique_r, w_cells, w_vals)
        out = np.zeros(self.num_processors, dtype=np.int64)
        if readers.size:
            out[readers] = fetched[inv_r]
        self.pram_steps += 1
        return out

    # -- bulk helpers -------------------------------------------------------

    def _live_processors(self) -> int:
        """Processors currently able to issue a request.

        Backends that track processor faults report their survivor
        count; chunked bulk transfers size themselves to it, because a
        dead processor cannot originate the request for its slot (its
        share of the work lands on survivors — degraded mode costs more
        steps instead of failing).  Refuses when nobody survives.
        """
        P = self.num_processors
        if hasattr(self.backend, "live_processor_count"):
            P = min(P, int(self.backend.live_processor_count()))
        if P < 1:
            raise RuntimeError(
                "all processors failed: bulk transfer refused"
            )
        return P

    def scatter(self, base: int, values: np.ndarray) -> None:
        """Store ``values[i]`` at address ``base + i`` (one step if the
        array fits the live processor count, else several).

        Chunks carry distinct consecutive addresses, so the whole
        transfer is conflict-free under every policy and goes through
        the backend's batched step executor in one call.
        """
        values = np.asarray(values, dtype=np.int64)
        if values.size and not (
            0 <= base and base + values.size <= self.backend.memory_size
        ):
            raise ValueError("address out of shared-memory range")
        P = self._live_processors()
        if not hasattr(self.backend, "run_steps"):
            for lo in range(0, values.size, P):  # duck-typed backends
                chunk = values[lo : lo + P]
                addrs = np.full(self.num_processors, IDLE, dtype=np.int64)
                addrs[: chunk.size] = base + lo + np.arange(chunk.size)
                vals = np.zeros(self.num_processors, dtype=np.int64)
                vals[: chunk.size] = chunk
                self.write(addrs, vals)
            return
        requests = []
        for lo in range(0, values.size, P):
            chunk = values[lo : lo + P]
            addrs = base + lo + np.arange(chunk.size, dtype=np.int64)
            requests.append(
                StepRequest(op="write", variables=addrs, values=chunk)
            )
        self.backend.run_steps(requests)
        self.pram_steps += len(requests)

    def gather(self, base: int, count: int) -> np.ndarray:
        """Fetch ``count`` consecutive cells starting at ``base`` (batched
        like :meth:`scatter`, chunked to the live processor count)."""
        if count and not (0 <= base and base + count <= self.backend.memory_size):
            raise ValueError("address out of shared-memory range")
        P = self._live_processors()
        out = np.empty(count, dtype=np.int64)
        if not hasattr(self.backend, "run_steps"):
            for lo in range(0, count, P):  # duck-typed backends
                size = min(P, count - lo)
                addrs = np.full(self.num_processors, IDLE, dtype=np.int64)
                addrs[:size] = base + lo + np.arange(size)
                out[lo : lo + size] = self.read(addrs)[:size]
            return out
        requests = []
        for lo in range(0, count, P):
            size = min(P, count - lo)
            addrs = base + lo + np.arange(size, dtype=np.int64)
            requests.append(StepRequest(op="read", variables=addrs))
        results = self.backend.run_steps(requests)
        self.pram_steps += len(requests)
        for lo, values in zip(range(0, count, P), results):
            out[lo : lo + len(values)] = values
        return out

    @property
    def cost(self) -> float:
        """Backend-specific cumulative cost (mesh steps or unit steps)."""
        return self.backend.cost

"""Iterative stencil (Jacobi) sweeps on the PRAM.

A 1-D 3-point Jacobi iteration with fixed boundary cells: the classic
bulk-synchronous scientific kernel, whose regular neighbor accesses are
the friendliest possible workload for the memory map (each step's
request set is a contiguous window).  Integer arithmetic: the update is
``x'[i] = (x[i-1] + x[i+1]) // 2`` so runs are exactly reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import PRAMMachine

__all__ = ["jacobi_1d"]


def jacobi_1d(
    machine: PRAMMachine,
    values: np.ndarray,
    sweeps: int,
    *,
    base: int = 0,
) -> np.ndarray:
    """Run ``sweeps`` Jacobi iterations; boundary cells stay fixed.

    Uses ping-pong buffers at ``[base, base + 2m)``; returns the final
    array.
    """
    values = np.asarray(values, dtype=np.int64)
    m = values.size
    if m < 3:
        raise ValueError("need at least 3 cells (2 boundaries + interior)")
    if sweeps < 0:
        raise ValueError("sweeps must be non-negative")
    check_capacity(machine, m, "jacobi_1d")
    src, dst = base, base + m
    machine.scatter(src, values)
    machine.scatter(dst, values)  # boundaries pre-seeded in both buffers
    interior = np.arange(1, m - 1, dtype=np.int64)
    for _ in range(sweeps):
        left = machine.read(pad_addrs(machine, src + interior - 1))[: m - 2]
        right = machine.read(pad_addrs(machine, src + interior + 1))[: m - 2]
        machine.write(
            pad_addrs(machine, dst + interior),
            pad_values(machine, (left + right) // 2),
        )
        src, dst = dst, src
    return machine.gather(src, m)

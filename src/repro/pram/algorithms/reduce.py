"""Tournament reductions (sum, max) in O(log m) PRAM steps."""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import IDLE, PRAMMachine

__all__ = ["reduce_sum", "reduce_max"]


def _reduce(machine: PRAMMachine, values: np.ndarray, base: int, op) -> int:
    values = np.asarray(values, dtype=np.int64)
    m = values.size
    if m == 0:
        raise ValueError("cannot reduce an empty array")
    check_capacity(machine, m, "reduction")
    machine.scatter(base, values)
    width = m
    while width > 1:
        half = (width + 1) // 2
        idx = np.arange(half, dtype=np.int64)
        left = machine.read(pad_addrs(machine, base + idx))[:half]
        right_addrs = np.where(half + idx < width, base + half + idx, IDLE)
        right = machine.read(pad_addrs(machine, right_addrs))[:half]
        combined = np.where(half + idx < width, op(left, right), left)
        machine.write(pad_addrs(machine, base + idx), pad_values(machine, combined))
        width = half
    return int(machine.gather(base, 1)[0])


def reduce_sum(machine: PRAMMachine, values: np.ndarray, *, base: int = 0) -> int:
    """Sum of ``values`` via a binary tournament in shared memory."""
    return _reduce(machine, values, base, np.add)


def reduce_max(machine: PRAMMachine, values: np.ndarray, *, base: int = 0) -> int:
    """Maximum of ``values`` via a binary tournament in shared memory."""
    return _reduce(machine, values, base, np.maximum)

"""Dense matrix-vector product: one processor per row.

Each of the ``r`` processors scans its row, so every step all active
processors read one matrix cell (distinct addresses) and then the same
vector cell (a *concurrent read* — the CREW pattern the machine has to
combine).  Total 2c + O(1) PRAM steps for an r x c matrix.
"""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import PRAMMachine

__all__ = ["matvec"]


def matvec(
    machine: PRAMMachine, matrix: np.ndarray, vector: np.ndarray, *, base: int = 0
) -> np.ndarray:
    """Compute ``matrix @ vector`` on the PRAM.

    Layout in shared memory from ``base``: the matrix row-major (r*c
    cells), then the vector (c cells), then the result (r cells).
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    vector = np.asarray(vector, dtype=np.int64)
    if matrix.ndim != 2:
        raise ValueError("matrix must be 2-D")
    r, c = matrix.shape
    if vector.shape != (c,):
        raise ValueError(f"vector must have shape ({c},)")
    check_capacity(machine, r, "matvec")
    mat_base = base
    vec_base = base + r * c
    out_base = vec_base + c
    machine.scatter(mat_base, matrix.reshape(-1))
    machine.scatter(vec_base, vector)

    rows = np.arange(r, dtype=np.int64)
    acc = np.zeros(r, dtype=np.int64)
    for j in range(c):
        a = machine.read(pad_addrs(machine, mat_base + rows * c + j))[:r]
        x = machine.read(pad_addrs(machine, np.full(r, vec_base + j)))[:r]
        acc += a * x
    machine.write(pad_addrs(machine, out_base + rows), pad_values(machine, acc))
    return machine.gather(out_base, r)

"""Classical PRAM algorithms, written against the step-level machine API.

Each function issues genuine PRAM steps (one shared-memory access per
processor per step, local registers in between), so running them on a
:class:`repro.pram.MeshBackend` exercises the full simulation stack with
the access patterns the paper's introduction motivates: contiguous
(scatter/gather), strided and shrinking (scan, reduction), concurrent
reads of one cell (matvec broadcast), and data-dependent pointer chasing
(list ranking).
"""

from repro.pram.algorithms.compaction import compact, segmented_scan
from repro.pram.algorithms.graphs import bfs
from repro.pram.algorithms.matmul import matmul
from repro.pram.algorithms.matvec import matvec
from repro.pram.algorithms.ranking import list_ranking
from repro.pram.algorithms.reduce import reduce_max, reduce_sum
from repro.pram.algorithms.scan import prefix_sum
from repro.pram.algorithms.sorting import odd_even_sort
from repro.pram.algorithms.stencil import jacobi_1d

__all__ = [
    "bfs",
    "compact",
    "jacobi_1d",
    "list_ranking",
    "matmul",
    "matvec",
    "odd_even_sort",
    "prefix_sum",
    "reduce_max",
    "reduce_sum",
    "segmented_scan",
]

"""Graph algorithms on the PRAM: level-synchronous BFS.

BFS is the canonical irregular-parallelism workload: frontier sizes and
memory addresses depend on the input graph, so the simulated mesh sees
unpredictable, data-dependent request sets — the regime deterministic
simulation guarantees worst-case bounds for.

Layout in shared memory from ``base``: CSR offsets (V+1 cells), CSR
targets (E cells), then the distance array (V cells, -1 = unvisited,
encoded as a large sentinel since cells hold int64).
"""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import IDLE, PRAMMachine

__all__ = ["bfs"]

_UNREACHED = np.int64(2**40)  # distance sentinel inside shared memory


def bfs(
    machine: PRAMMachine,
    offsets: np.ndarray,
    targets: np.ndarray,
    source: int,
    *,
    base: int = 0,
) -> np.ndarray:
    """Breadth-first distances from ``source`` over a CSR graph.

    One processor per vertex; each BFS level scans the frontier's
    adjacency in parallel (processor v repeatedly reads one neighbor per
    step).  Returns distances with ``-1`` for unreachable vertices.
    """
    offsets = np.asarray(offsets, dtype=np.int64)
    targets = np.asarray(targets, dtype=np.int64)
    V = offsets.size - 1
    E = targets.size
    if V < 1 or offsets[0] != 0 or offsets[-1] != E:
        raise ValueError("malformed CSR offsets")
    if np.any((targets < 0) | (targets >= V)):
        raise ValueError("CSR target out of range")
    if not 0 <= source < V:
        raise ValueError("source out of range")
    check_capacity(machine, V, "bfs")

    off_base = base
    tgt_base = base + V + 1
    dist_base = tgt_base + E
    machine.scatter(off_base, offsets)
    if E:
        machine.scatter(tgt_base, targets)
    machine.scatter(dist_base, np.full(V, _UNREACHED, dtype=np.int64))
    machine.write(
        pad_addrs(machine, np.array([dist_base + source])),
        pad_values(machine, np.array([0])),
    )

    verts = np.arange(V, dtype=np.int64)
    deg_lo = offsets[:-1]
    deg_hi = offsets[1:]
    max_deg = int((deg_hi - deg_lo).max()) if V else 0
    for level in range(V):
        dist = machine.read(pad_addrs(machine, dist_base + verts))[:V]
        frontier = dist == level
        if not frontier.any():
            break
        # Each frontier vertex walks its adjacency list; one neighbor
        # read + one distance write per step slot, lock-step across the
        # frontier (idle lanes for exhausted lists).
        for j in range(max_deg):
            slot = deg_lo + j
            live = frontier & (slot < deg_hi)
            addr = np.where(live, tgt_base + slot, IDLE)
            nbr = machine.read(pad_addrs(machine, addr))[:V]
            nbr_dist_addr = np.where(live, dist_base + nbr, IDLE)
            nbr_dist = machine.read(pad_addrs(machine, nbr_dist_addr))[:V]
            update = live & (nbr_dist > level + 1)
            waddr = np.where(update, dist_base + nbr, IDLE)
            machine.write(
                pad_addrs(machine, waddr),
                pad_values(machine, np.full(V, level + 1, dtype=np.int64)),
            )
    out = machine.gather(dist_base, V)
    out[out >= _UNREACHED] = -1
    return out

"""Dense matrix multiplication: one processor per output element.

``C = A @ B`` for an (r x s) by (s x c) product with ``r*c`` processors:
processor (i, j) serially accumulates ``sum_t A[i,t] B[t,j]``, reading
one A element and one B element per step.  B-column reads from the same
t collide across processors of a row/column — the concurrent-read
combining of the machine keeps this a legal CREW program.
"""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import PRAMMachine

__all__ = ["matmul"]


def matmul(
    machine: PRAMMachine, a: np.ndarray, b: np.ndarray, *, base: int = 0
) -> np.ndarray:
    """Compute ``a @ b`` on the PRAM; returns the (r x c) product.

    Layout from ``base``: A row-major, then B row-major, then C.
    """
    a = np.asarray(a, dtype=np.int64)
    b = np.asarray(b, dtype=np.int64)
    if a.ndim != 2 or b.ndim != 2 or a.shape[1] != b.shape[0]:
        raise ValueError(f"incompatible shapes {a.shape} x {b.shape}")
    r, s = a.shape
    _, c = b.shape
    check_capacity(machine, r * c, "matmul")
    a_base = base
    b_base = base + r * s
    c_base = b_base + s * c
    machine.scatter(a_base, a.reshape(-1))
    machine.scatter(b_base, b.reshape(-1))

    procs = np.arange(r * c, dtype=np.int64)
    i = procs // c
    j = procs % c
    acc = np.zeros(r * c, dtype=np.int64)
    for t in range(s):
        av = machine.read(pad_addrs(machine, a_base + i * s + t))[: r * c]
        bv = machine.read(pad_addrs(machine, b_base + t * c + j))[: r * c]
        acc += av * bv
    machine.write(pad_addrs(machine, c_base + procs), pad_values(machine, acc))
    return machine.gather(c_base, r * c).reshape(r, c)

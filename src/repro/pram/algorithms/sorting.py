"""Odd-even transposition sort: m phases of neighbor compare-exchange.

One processor per pair; each phase reads both cells of its pair and
writes them back in order.  O(m) PRAM steps for m keys — not the fastest
PRAM sort, but a dense, highly regular access pattern that stresses the
simulation with full-width steps.
"""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import PRAMMachine

__all__ = ["odd_even_sort"]


def odd_even_sort(machine: PRAMMachine, values: np.ndarray, *, base: int = 0) -> np.ndarray:
    """Sort ``values`` ascending in shared memory ``[base, base + m)``."""
    values = np.asarray(values, dtype=np.int64)
    m = values.size
    if m <= 1:
        return values.copy()
    check_capacity(machine, (m + 1) // 2, "odd_even_sort")
    machine.scatter(base, values)
    for phase in range(m):
        start = phase % 2
        lefts = np.arange(start, m - 1, 2, dtype=np.int64)
        if lefts.size == 0:
            continue
        a = machine.read(pad_addrs(machine, base + lefts))[: lefts.size]
        b = machine.read(pad_addrs(machine, base + lefts + 1))[: lefts.size]
        lo = np.minimum(a, b)
        hi = np.maximum(a, b)
        machine.write(pad_addrs(machine, base + lefts), pad_values(machine, lo))
        machine.write(pad_addrs(machine, base + lefts + 1), pad_values(machine, hi))
    return machine.gather(base, m)

"""Scan-based PRAM primitives: segmented scan and stream compaction.

Both are classic O(log m)-step building blocks layered on the recursive
doubling scan:

* :func:`segmented_scan` — prefix sums that restart at segment heads,
  via the standard (flag, value) semiring trick;
* :func:`compact` — keep the elements matching a predicate mask, packed
  to the front, with ranks computed by an exclusive scan of the mask.
"""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import IDLE, PRAMMachine

__all__ = ["segmented_scan", "compact"]


def segmented_scan(
    machine: PRAMMachine,
    values: np.ndarray,
    heads: np.ndarray,
    *,
    base: int = 0,
) -> np.ndarray:
    """Inclusive prefix sums restarting at each segment head.

    ``heads[i] = 1`` marks the start of a segment.  Uses the classic
    pair-propagation: at distance d, position i accumulates position
    i - d only if no head lies in ``(i-d, i]`` — tracked by OR-scanning
    the flags alongside the values.

    Layout: values ping-pong in ``[base, base + 2m)``, flags ping-pong in
    ``[base + 2m, base + 4m)``.
    """
    values = np.asarray(values, dtype=np.int64)
    heads = np.asarray(heads, dtype=np.int64)
    m = values.size
    if heads.shape != (m,):
        raise ValueError("heads must align with values")
    if m == 0:
        return values.copy()
    if not ((heads == 0) | (heads == 1)).all():
        raise ValueError("heads must be 0/1 flags")
    check_capacity(machine, m, "segmented_scan")
    v_src, v_dst = base, base + m
    f_src, f_dst = base + 2 * m, base + 3 * m
    machine.scatter(v_src, values)
    machine.scatter(f_src, heads)
    i = np.arange(m, dtype=np.int64)
    d = 1
    while d < m:
        x = machine.read(pad_addrs(machine, v_src + i))[:m]
        f = machine.read(pad_addrs(machine, f_src + i))[:m]
        prev_ok = i >= d
        xp = machine.read(pad_addrs(machine, np.where(prev_ok, v_src + i - d, IDLE)))[:m]
        fp = machine.read(pad_addrs(machine, np.where(prev_ok, f_src + i - d, IDLE)))[:m]
        absorb = prev_ok & (f == 0)
        new_x = x + np.where(absorb, xp, 0)
        new_f = np.where(prev_ok, np.maximum(f, np.where(absorb, fp, f)), f)
        # (f OR fp) when absorbing; heads stay heads.
        machine.write(pad_addrs(machine, v_dst + i), pad_values(machine, new_x))
        machine.write(pad_addrs(machine, f_dst + i), pad_values(machine, new_f))
        v_src, v_dst = v_dst, v_src
        f_src, f_dst = f_dst, f_src
        d *= 2
    return machine.gather(v_src, m)


def compact(
    machine: PRAMMachine,
    values: np.ndarray,
    keep: np.ndarray,
    *,
    base: int = 0,
) -> np.ndarray:
    """Pack the kept elements to the front, preserving order.

    Ranks come from an inclusive scan of the 0/1 keep mask (one
    recursive-doubling pass); each kept element then writes itself to
    ``out[rank - 1]`` in a single scatter step.
    """
    from repro.pram.algorithms.scan import prefix_sum

    values = np.asarray(values, dtype=np.int64)
    keep = np.asarray(keep, dtype=np.int64)
    m = values.size
    if keep.shape != (m,):
        raise ValueError("keep must align with values")
    if m == 0:
        return values.copy()
    if not ((keep == 0) | (keep == 1)).all():
        raise ValueError("keep must be 0/1 flags")
    check_capacity(machine, m, "compact")
    ranks = prefix_sum(machine, keep, base=base)  # uses [base, base+2m)
    out_base = base + 2 * m
    sel = keep == 1
    addrs = np.where(sel, out_base + ranks - 1, IDLE)
    machine.write(pad_addrs(machine, addrs), pad_values(machine, values))
    count = int(ranks[-1])
    return machine.gather(out_base, count) if count else np.zeros(0, dtype=np.int64)

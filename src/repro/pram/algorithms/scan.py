"""Parallel prefix sum (inclusive scan) by recursive doubling.

The classic O(log m)-step PRAM scan: at distance d, every processor i
with ``i >= d`` adds the value at ``i - d``.  Two ping-pong buffers make
each iteration CREW-safe (read the old buffer, write the new one).
"""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import IDLE, PRAMMachine

__all__ = ["prefix_sum"]


def prefix_sum(machine: PRAMMachine, values: np.ndarray, *, base: int = 0) -> np.ndarray:
    """Inclusive prefix sums of ``values`` computed on the PRAM.

    Uses shared memory ``[base, base + 2m)`` as ping-pong buffers.
    Returns the scanned array (also left in shared memory).
    """
    values = np.asarray(values, dtype=np.int64)
    m = values.size
    if m == 0:
        return values.copy()
    check_capacity(machine, m, "prefix_sum")
    machine.scatter(base, values)
    src, dst = base, base + m
    i = np.arange(m, dtype=np.int64)
    d = 1
    while d < m:
        x = machine.read(pad_addrs(machine, src + i))[:m]
        prev_addrs = np.where(i >= d, src + i - d, IDLE)
        xprev = machine.read(pad_addrs(machine, prev_addrs))[:m]
        total = x + np.where(i >= d, xprev, 0)
        machine.write(pad_addrs(machine, dst + i), pad_values(machine, total))
        src, dst = dst, src
        d *= 2
    return machine.gather(src, m)

"""Shared helpers for the PRAM algorithm library."""

from __future__ import annotations

import numpy as np

from repro.pram.machine import IDLE, PRAMMachine

__all__ = ["pad_addrs", "pad_values", "check_capacity"]


def pad_addrs(machine: PRAMMachine, addrs: np.ndarray) -> np.ndarray:
    """Extend a per-active-processor address vector to all P processors."""
    out = np.full(machine.num_processors, IDLE, dtype=np.int64)
    out[: addrs.size] = addrs
    return out


def pad_values(machine: PRAMMachine, values: np.ndarray) -> np.ndarray:
    """Extend a value vector to all P processors (idle lanes get 0)."""
    out = np.zeros(machine.num_processors, dtype=np.int64)
    out[: values.size] = values
    return out


def check_capacity(machine: PRAMMachine, needed: int, what: str) -> None:
    """Fail fast when a problem needs more processors than the machine has."""
    if needed > machine.num_processors:
        raise ValueError(
            f"{what} needs {needed} processors, machine has "
            f"{machine.num_processors}"
        )

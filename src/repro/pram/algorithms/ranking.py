"""List ranking by pointer jumping — the canonical data-dependent
(irregular) PRAM access pattern.

Each element of a linked list learns its distance to the tail in
O(log m) jumping rounds: ``rank[i] += rank[next[i]]; next[i] =
next[next[i]]``.  The indirection ``rank[next[i]]`` makes the memory
trace depend on data, exercising the simulation on non-structured
request sets.
"""

from __future__ import annotations

import numpy as np

from repro.pram.algorithms._util import check_capacity, pad_addrs, pad_values
from repro.pram.machine import PRAMMachine

__all__ = ["list_ranking"]


def list_ranking(
    machine: PRAMMachine, successor: np.ndarray, *, base: int = 0
) -> np.ndarray:
    """Distance of every list element to the tail.

    Parameters
    ----------
    successor : array of int
        ``successor[i]`` is the next element; the tail points to itself.

    Returns
    -------
    ranks : array of int
        ``ranks[i]`` = number of links from i to the tail.

    Uses shared memory ``[base, base + 2m)``: successors then ranks.
    """
    successor = np.asarray(successor, dtype=np.int64)
    m = successor.size
    if m == 0:
        return successor.copy()
    if np.any((successor < 0) | (successor >= m)):
        raise ValueError("successor indices out of range")
    check_capacity(machine, m, "list_ranking")
    nxt_base, rank_base = base, base + m
    machine.scatter(nxt_base, successor)
    initial_rank = (successor != np.arange(m)).astype(np.int64)
    machine.scatter(rank_base, initial_rank)

    i = np.arange(m, dtype=np.int64)
    rounds = max(1, int(np.ceil(np.log2(max(m, 2)))))
    for _ in range(rounds):
        nxt = machine.read(pad_addrs(machine, nxt_base + i))[:m]
        rank = machine.read(pad_addrs(machine, rank_base + i))[:m]
        rank_next = machine.read(pad_addrs(machine, rank_base + nxt))[:m]
        nxt_next = machine.read(pad_addrs(machine, nxt_base + nxt))[:m]
        machine.write(
            pad_addrs(machine, rank_base + i), pad_values(machine, rank + rank_next)
        )
        machine.write(pad_addrs(machine, nxt_base + i), pad_values(machine, nxt_next))
    return machine.gather(rank_base, m)

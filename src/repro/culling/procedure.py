"""Procedure CULLING (Section 3.2), vectorized over the request set.

The procedure maintains, per requested variable v, a shrinking copy mask
``C_v^i`` that is always a *minimal level-i target set*:

* ``C_v^0`` — a minimal level-0 target set (supermajority at every tree
  node);
* iteration i marks, in every level-i page, at most ``2 q^k n^{1-1/2^i}``
  of the currently-selected copies (deterministic first-come order), then
  every variable extracts a minimal level-i target set preferring its
  marked copies, augmenting with unmarked ones (the paper's ``S_v^i``)
  only when the marked ones are insufficient.

The invariant "``C_v^{i-1}`` is a level-(i-1) target set" guarantees the
augmenting branch always succeeds: level-(i-1) thresholds dominate
level-i thresholds node-by-node.

Cost accounting follows Eq. (2): each iteration sorts/ranks the <= q^k n
selected copies by destination page (``O(q^k sqrt(n))`` mesh steps) and
does ``O(q^k)`` local work per processor, so
``T_culling = O(k q^k sqrt(n))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hmos.copytree import extract_min_target_set
from repro.hmos.scheme import HMOS
from repro.mesh.costmodel import CostModel
from repro.mesh.ksort import kk_sort_steps

__all__ = ["IterationStats", "CullingResult", "cull"]


@dataclass(frozen=True)
class IterationStats:
    """Per-iteration diagnostics of CULLING."""

    level: int
    cap: int
    marked: int
    augmented_variables: int
    augmented_copies: int
    max_page_load: int


@dataclass(frozen=True)
class CullingResult:
    """Output of :func:`cull`.

    Attributes
    ----------
    variables : np.ndarray
        The request set, as given.
    selected : np.ndarray, bool, shape (N, q^k)
        Final target-set mask ``C_v`` per variable.
    iterations : tuple[IterationStats, ...]
        Diagnostics per level.
    charged_steps : float
        Eq. (2) mesh-step charge for running the procedure.
    chains : np.ndarray or None
        The full ``(N, q^k, k)`` module-chain tensor CULLING already
        derived for every copy; the access protocol slices the selected
        rows out of it instead of recomputing ``placement.chains``.
    """

    variables: np.ndarray
    selected: np.ndarray
    iterations: tuple[IterationStats, ...]
    charged_steps: float
    chains: np.ndarray | None = None

    @property
    def total_selected(self) -> int:
        return int(self.selected.sum())


def _mark_with_cap(keys: np.ndarray, selected: np.ndarray, cap: int) -> np.ndarray:
    """Mark at most ``cap`` selected copies per page (per distinct key).

    Deterministic: copies are ranked within their page by (variable row,
    path) order; the first ``cap`` win.  Marking is maximal — a page with
    more than ``cap`` selected copies gets exactly ``cap`` marked — which
    the Theorem 3 proof requires.
    """
    marked = np.zeros_like(selected)
    flat_sel = selected.reshape(-1)
    sel_idx = np.nonzero(flat_sel)[0]
    if sel_idx.size == 0:
        return marked
    sel_keys = keys.reshape(-1)[sel_idx]
    order = np.argsort(sel_keys, kind="stable")
    sorted_keys = sel_keys[order]
    new_group = np.ones(sorted_keys.size, dtype=bool)
    new_group[1:] = sorted_keys[1:] != sorted_keys[:-1]
    group_start = np.maximum.accumulate(
        np.where(new_group, np.arange(sorted_keys.size), 0)
    )
    rank_in_page = np.arange(sorted_keys.size) - group_start
    win = rank_in_page < cap
    marked.reshape(-1)[sel_idx[order[win]]] = True
    return marked


def cull(
    scheme: HMOS,
    variables: np.ndarray,
    *,
    cost_model: CostModel | None = None,
    accounting: str = "model",
) -> CullingResult:
    """Run CULLING for a request set of distinct variables.

    Parameters
    ----------
    scheme : HMOS
        The memory organization instance.
    variables : array of int
        Requested variable ids; must be distinct (a PRAM step accesses
        distinct cells; concurrent accesses are combined upstream).
    accounting : {"model", "measured"}
        How the per-iteration sort-and-rank is charged: ``"model"`` uses
        the cited ``O(q^k sqrt(n))`` bound through the cost model;
        ``"measured"`` uses the exact step count of the deterministic
        merge-split shearsort schedule (:func:`repro.mesh.ksort.kk_sort`)
        that would move the q^k copy records per node — same selection,
        honest (log-factor-carrying) steps.

    Returns
    -------
    CullingResult
        Final target sets plus diagnostics and the Eq. (2) time charge.
    """
    params = scheme.params
    variables = np.asarray(variables, dtype=np.int64)
    if variables.ndim != 1:
        raise ValueError("variables must be a 1-D array")
    if np.unique(variables).size != variables.size:
        raise ValueError("request set must contain distinct variables")
    if np.any((variables < 0) | (variables >= params.num_variables)):
        raise ValueError("variable id out of range")
    if variables.size > params.n:
        raise ValueError(
            f"at most one request per processor: {variables.size} > n={params.n}"
        )
    if accounting not in ("model", "measured"):
        raise ValueError(f"accounting must be 'model' or 'measured', got {accounting!r}")
    if variables.size == 0:
        # No requests: nothing moves, nothing is charged.
        return CullingResult(
            variables=variables,
            selected=np.zeros((0, params.redundancy), dtype=bool),
            iterations=(),
            charged_steps=0.0,
            chains=np.zeros((0, params.redundancy, params.k), dtype=np.int64),
        )
    cost_model = cost_model or CostModel()
    q, k = params.q, params.k
    red = params.redundancy
    n_req = variables.size

    selected = scheme.initial_target_masks(n_req)
    paths = np.arange(red, dtype=np.int64)
    # Chains are path-dependent but variable-batch friendly: compute the
    # full (N, q^k, k) chain tensor once.
    v_grid = np.repeat(variables, red)
    p_grid = np.tile(paths, n_req)
    chains = scheme.placement.chains(v_grid, p_grid).reshape(n_req, red, k)

    stats: list[IterationStats] = []
    charged = 0.0
    for level in range(1, k + 1):
        cap = params.culling_cap(level)
        keys = scheme.placement.page_keys(
            level, v_grid, p_grid, chains=chains.reshape(-1, k)
        ).reshape(n_req, red)
        marked = _mark_with_cap(keys, selected, cap)
        feasible, chosen, added = extract_min_target_set(
            marked & selected, selected, q, k, level
        )
        if not feasible.all():
            raise AssertionError(
                "CULLING invariant violated: C^{i-1} lost its target set"
            )
        selected = chosen
        # Diagnostics: page load after this iteration.  np.unique counts
        # only the occupied pages; bincount would allocate an array as
        # large as the biggest page *key* (m_level * q^(k-level) ids).
        sel_keys = keys[selected.astype(bool)]
        max_load = (
            int(np.unique(sel_keys, return_counts=True)[1].max())
            if sel_keys.size
            else 0
        )
        stats.append(
            IterationStats(
                level=level,
                cap=cap,
                marked=int(marked.sum()),
                augmented_variables=int((added > 0).sum()),
                augmented_copies=int(added.sum()),
                max_page_load=max_load,
            )
        )
        # Eq. (2): sort+rank the selected copies (q^k per processor) on
        # the full mesh, plus O(q^k) local extraction work.  The sort is
        # charged per the cited bound or at the exact merge-split
        # shearsort schedule length.
        if accounting == "measured":
            charged += kk_sort_steps(params.side, red) + red
        else:
            charged += cost_model.sort_steps(red, params.n) + red

    return CullingResult(
        variables=variables,
        selected=selected,
        iterations=tuple(stats),
        charged_steps=charged,
        chains=chains,
    )

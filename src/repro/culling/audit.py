"""Congestion audits for Theorem 3.

These compute, for any copy-selection mask, the exact number of selected
copies falling in each level-i page, and compare the maximum against the
paper's bound ``4 q^k n^{1 - 1/2^i}``.  Used as assertions in the test
suite and as measurements in experiment E4.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.hmos.scheme import HMOS

__all__ = ["PageLoad", "page_congestion", "audit_theorem3"]


@dataclass(frozen=True)
class PageLoad:
    """Measured congestion of one tessellation level."""

    level: int
    max_load: int
    mean_load: float
    pages_hit: int
    bound: float

    @property
    def within_bound(self) -> bool:
        return self.max_load <= self.bound


def page_congestion(
    scheme: HMOS, variables: np.ndarray, selected: np.ndarray, level: int
) -> np.ndarray:
    """Selected-copy count per level-``level`` page (only pages hit).

    Returns the loads of the distinct pages receiving at least one
    selected copy, in page-key order.
    """
    params = scheme.params
    variables = np.asarray(variables, dtype=np.int64)
    red = params.redundancy
    n_req = variables.size
    if selected.shape != (n_req, red):
        raise ValueError(f"selected must have shape ({n_req}, {red})")
    v_grid = np.repeat(variables, red)
    p_grid = np.tile(np.arange(red, dtype=np.int64), n_req)
    keys = scheme.placement.page_keys(level, v_grid, p_grid).reshape(n_req, red)
    hit = keys[np.asarray(selected, dtype=bool)]
    if hit.size == 0:
        return np.zeros(0, dtype=np.int64)
    _, counts = np.unique(hit, return_counts=True)
    return counts


def audit_theorem3(
    scheme: HMOS, variables: np.ndarray, selected: np.ndarray
) -> list[PageLoad]:
    """Check Theorem 3 at every level; raises on violation.

    Returns the per-level measurements so callers can report margins.
    """
    params = scheme.params
    out = []
    for level in range(1, params.k + 1):
        counts = page_congestion(scheme, variables, selected, level)
        bound = params.theorem3_bound(level)
        load = PageLoad(
            level=level,
            max_load=int(counts.max()) if counts.size else 0,
            mean_load=float(counts.mean()) if counts.size else 0.0,
            pages_hit=int(counts.size),
            bound=bound,
        )
        if not load.within_bound:
            raise AssertionError(
                f"Theorem 3 violated at level {level}: "
                f"max load {load.max_load} > bound {bound:.1f}"
            )
        out.append(load)
    return out

"""Copy selection: procedure CULLING (Section 3.2) and its audits.

CULLING turns the request set R (one variable per processor) into, for
each variable, a target set of copies whose access keeps every level-i
page's congestion below Theorem 3's ``4 q^k n^{1 - 1/2^i}`` bound — the
property the staged access protocol's running time rests on.
"""

from repro.culling.audit import audit_theorem3, page_congestion
from repro.culling.faults import FaultyCullingResult, cull_with_faults
from repro.culling.procedure import CullingResult, IterationStats, cull

__all__ = [
    "CullingResult",
    "FaultyCullingResult",
    "cull_with_faults",
    "IterationStats",
    "audit_theorem3",
    "cull",
    "page_congestion",
]

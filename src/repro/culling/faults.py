"""Fault-aware copy selection (extension of procedure CULLING).

With some copies unavailable, the invariant "``C_v^0`` is a level-0
target set" may be unattainable: the starting strength is lowered per
variable to the strongest level its surviving copies still support, and
each CULLING iteration simply keeps the previous selection for variables
whose current set cannot yet be tightened to the iteration's level.
Variables without even a level-k target set are *unrecoverable* and
reported; everything else keeps full read/write consistency (any two
target sets intersect).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.culling.procedure import CullingResult, IterationStats, _mark_with_cap
from repro.hmos.copytree import access_mask, extract_min_target_set
from repro.hmos.scheme import HMOS
from repro.mesh.costmodel import CostModel

__all__ = ["FaultyCullingResult", "cull_with_faults"]


@dataclass(frozen=True)
class FaultyCullingResult(CullingResult):
    """CULLING output plus fault bookkeeping.

    ``start_levels[j]`` is the strongest (lowest) tree level whose
    target-set thresholds variable ``j``'s surviving copies still meet
    (0 = undamaged).  After ``__post_init__`` the field is always a 1-D
    int64 ndarray aligned with ``variables`` — never ``None`` (the
    dataclass default exists only to satisfy inheritance from
    :class:`CullingResult`, whose trailing field has a default)."""

    start_levels: np.ndarray = field(
        default_factory=lambda: np.zeros(0, dtype=np.int64)
    )

    def __post_init__(self):
        object.__setattr__(
            self,
            "start_levels",
            np.asarray(self.start_levels, dtype=np.int64).reshape(-1),
        )


def cull_with_faults(
    scheme: HMOS,
    variables: np.ndarray,
    allowed: np.ndarray,
    *,
    cost_model: CostModel | None = None,
    chains: np.ndarray | None = None,
) -> FaultyCullingResult:
    """CULLING restricted to the available copies.

    Parameters
    ----------
    allowed : bool array, shape (N, q^k)
        Copy availability (see :meth:`FaultInjector.allowed_mask`).
    chains : int array, shape (N, q^k, k), optional
        Precomputed module-chain tensor of the full copy grid; when the
        caller already derived it (e.g. to build ``allowed``), passing
        it avoids a second full-grid chain computation.

    Raises
    ------
    RuntimeError
        If any requested variable has no surviving level-k target set
        (unrecoverable); the message lists the casualties.
    """
    params = scheme.params
    variables = np.asarray(variables, dtype=np.int64)
    if np.unique(variables).size != variables.size:
        raise ValueError("request set must contain distinct variables")
    allowed = np.asarray(allowed, dtype=bool)
    n_req = variables.size
    red = params.redundancy
    if allowed.shape != (n_req, red):
        raise ValueError(f"allowed must have shape ({n_req}, {red})")
    cost_model = cost_model or CostModel()
    q, k = params.q, params.k

    # Starting strength: strongest (lowest) level each variable supports.
    start_levels = np.full(n_req, -1, dtype=np.int64)
    for level in range(k, -1, -1):
        ok = access_mask(allowed, q, k, level)
        start_levels[ok] = level
    dead = start_levels < 0
    if dead.any():
        raise RuntimeError(
            f"{int(dead.sum())} variable(s) unrecoverable after failures: "
            f"{variables[dead][:10].tolist()}"
        )

    selected = np.zeros((n_req, red), dtype=bool)
    for level in range(k + 1):
        rows = start_levels == level
        if rows.any():
            feas, chosen, _ = extract_min_target_set(
                allowed[rows], allowed[rows], q, k, level
            )
            assert feas.all()
            selected[rows] = chosen

    v_grid = np.repeat(variables, red)
    p_grid = np.tile(np.arange(red, dtype=np.int64), n_req)
    if chains is None:
        chains = scheme.placement.chains(v_grid, p_grid).reshape(n_req, red, k)
    else:
        chains = np.asarray(chains, dtype=np.int64).reshape(n_req, red, k)

    stats: list[IterationStats] = []
    charged = 0.0
    for level in range(1, k + 1):
        cap = params.culling_cap(level)
        keys = scheme.placement.page_keys(
            level, v_grid, p_grid, chains=chains.reshape(-1, k)
        ).reshape(n_req, red)
        marked = _mark_with_cap(keys, selected, cap)
        feasible, chosen, added = extract_min_target_set(
            marked & selected, selected, q, k, level
        )
        # Variables too damaged for this level keep their selection.
        keep = ~feasible
        chosen[keep] = selected[keep]
        selected = chosen
        sel_keys = keys[selected]
        max_load = (
            int(np.unique(sel_keys, return_counts=True)[1].max())
            if sel_keys.size
            else 0
        )
        stats.append(
            IterationStats(
                level=level,
                cap=cap,
                marked=int(marked.sum()),
                augmented_variables=int((added[feasible] > 0).sum()),
                augmented_copies=int(added[feasible].sum()),
                max_page_load=max_load,
            )
        )
        charged += cost_model.sort_steps(red, params.n) + red

    return FaultyCullingResult(
        variables=variables,
        selected=selected,
        iterations=tuple(stats),
        charged_steps=charged,
        chains=chains,
        start_levels=start_levels,
    )

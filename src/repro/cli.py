"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``info``     print the HMOS structure for given parameters
``step``     simulate one PRAM memory step and print the cost breakdown
``route``    compare routing strategies on a skewed instance
``scaling``  sweep n and report measured scaling exponents
``run``      assemble and execute a PRAM assembly program on the mesh
``experiments``  list or execute the E1..E19 reproduction suite
``check``    differential verification: fuzz the stack against the PRAM
             oracle, or replay a recorded divergence artifact
``kernels``  list stepping-core kernel backends and microbench them
``cache``    inspect or clear the on-disk HMOS artifact cache
``trace``    record a traced workload, summarize a trace file, or diff
             two traces to localize per-stage step regressions
``serve``    long-lived asyncio JSON-lines simulation server (batched
             multi-tenant access to a pool of warm machines)
``client``   drive a seeded client fleet against a server (in-process
             by default) and report throughput + certification
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

from repro.analysis import fit_power_law, simulation_time_bound
from repro.check.generate import PROFILES as _PROFILES
from repro.hmos import HMOS, module_collision_requests
from repro.mesh import Mesh, PacketBatch, Tessellation, route_direct, route_via_submeshes
from repro.pram import MeshBackend, PRAMMachine
from repro.pram.interpreter import Interpreter, assemble
from repro.protocol import AccessProtocol
from repro.util import format_table

__all__ = ["main"]


def _add_scheme_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--n", type=int, default=256, help="mesh nodes (power-of-4 square)")
    parser.add_argument("--alpha", type=float, default=1.5, help="memory exponent (1, 2]")
    parser.add_argument("--q", type=int, default=3, help="replication factor (prime power >= 3)")
    parser.add_argument("--k", type=int, default=2, help="hierarchy depth")


def _cmd_info(args) -> int:
    scheme = HMOS(n=args.n, alpha=args.alpha, q=args.q, k=args.k)
    print(scheme.describe())
    return 0


def _add_shards_arg(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--shards", type=int, default=None,
        help="submesh shards for the cycle engine's stepping loop "
        "(default: $REPRO_SHARDS or 1; results are bit-identical)",
    )


def _add_kernels_arg(parser: argparse.ArgumentParser) -> None:
    from repro.mesh import BACKEND_CHOICES

    parser.add_argument(
        "--kernels", choices=BACKEND_CHOICES, default=None,
        help="stepping-core kernel backend (default: $REPRO_KERNELS or "
        "auto = numba when installed; results are bit-identical)",
    )


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fail-nodes", default=None, metavar="IDS",
        help="comma-separated memory-node ids failed from step 0",
    )
    parser.add_argument(
        "--fail-processors", default=None, metavar="IDS",
        help="comma-separated processor ranks failed from step 0 "
        "(their requests are reassigned to survivors)",
    )
    parser.add_argument(
        "--fail-at", action="append", default=None, metavar="STEP:KIND:IDS",
        help="mid-run fault event, e.g. 2:proc:5 or 1:mem:0,3 "
        "(repeatable; applied before step STEP executes)",
    )


def _build_injector(scheme, args):
    """FaultInjector from the --fail-* flags, or None when all unset."""
    from repro.hmos.faults import FaultInjector, parse_fault_event

    schedule = [parse_fault_event(text) for text in (args.fail_at or ())]
    nodes = (
        [int(x) for x in args.fail_nodes.split(",")] if args.fail_nodes else []
    )
    procs = (
        [int(x) for x in args.fail_processors.split(",")]
        if args.fail_processors
        else []
    )
    if not (schedule or nodes or procs):
        return None
    injector = FaultInjector(scheme, schedule=schedule)
    if nodes:
        injector.fail_nodes(nodes)
    if procs:
        injector.fail_processors(procs)
    return injector


def _cmd_step(args) -> int:
    from repro.protocol.access import StepError, StepRequest

    scheme = HMOS(n=args.n, alpha=args.alpha, q=args.q, k=args.k)
    faults = _build_injector(scheme, args)
    proto = AccessProtocol(
        scheme, engine=args.engine, shards=args.shards,
        kernels=args.kernels, faults=faults,
    )
    if args.workload == "adversarial":
        variables = module_collision_requests(scheme, args.n)
    else:
        variables = np.unique(
            (np.arange(args.n, dtype=np.int64) * 7919) % scheme.num_variables
        )[: args.n]
    if args.op == "write":
        step = StepRequest("write", variables, variables)
    else:
        step = StepRequest("read", variables)
    # One-element stream through run_steps so a --fail-at 0:... event
    # fires and a consistency-preserving refusal reports instead of
    # crashing (fault-free behaviour is identical to a direct call).
    (res,) = proto.run_steps([step], on_error="record")
    if isinstance(res, StepError):
        print(f"step refused: {res.message}", file=sys.stderr)
        return 1
    if faults is not None and faults.failed_processors.size:
        print(
            f"degraded mode: {faults.failed_processors.size} dead "
            f"processor(s), {len(res.reassignments)} request(s) reassigned"
        )
    rows = [
        [f"stage {s.stage}", s.t_nodes, s.delta_in, s.delta_out,
         f"{s.sort_steps:.0f}", f"{s.route_steps:.0f}"]
        for s in res.stages
    ]
    rows.append(["return", "-", "-", "-", "-", f"{res.return_steps:.0f}"])
    rows.append(["culling", "-", "-", "-", "-", f"{res.culling.charged_steps:.0f}"])
    print(format_table(
        ["phase", "t_i", "delta_in", "delta_out", "sort", "route"],
        rows,
        title=f"{args.op} step: n={args.n} alpha={args.alpha} "
        f"({args.workload} workload, {args.engine} engine)",
    ))
    bound = simulation_time_bound(args.n, args.alpha, args.q, args.k)
    print(f"\nT_sim measured: {res.total_steps:.0f}   Eq.(8) closed form: {bound:.0f}")
    return 0


def _cmd_route(args) -> int:
    mesh = Mesh(args.side)
    tess = Tessellation.uniform(mesh.n, args.submeshes)
    rng = np.random.default_rng(args.seed)
    hot_nodes = mesh.node_of_rank(
        np.arange(args.hot, dtype=np.int64) * (mesh.n // args.hot)
    )
    dst = np.repeat(hot_nodes, mesh.n // args.hot)
    rng.shuffle(dst)
    batch = PacketBatch(np.arange(mesh.n, dtype=np.int64), dst)
    direct = route_direct(mesh, batch, ports=args.ports)
    staged = route_via_submeshes(mesh, batch, tess, ports=args.ports)
    print(format_table(
        ["strategy", "steps", "detail"],
        [
            ["direct greedy", direct.steps,
             f"max in-transit queue {direct.max_queue}"],
            ["staged (Sec. 2)", staged.steps,
             f"sort {staged.sort_steps} + spread {staged.spread_steps}"
             f" + deliver {staged.deliver_steps}"],
        ],
        title=f"{mesh.side}x{mesh.side} mesh, {args.hot} hot receivers, "
        f"{args.ports}-port",
    ))
    return 0


def _cmd_scaling(args) -> int:
    ns = [int(x) for x in args.ns.split(",")]
    rows = []
    for alpha in (float(a) for a in args.alphas.split(",")):
        steps = []
        for n in ns:
            scheme = HMOS(n=n, alpha=alpha, q=args.q, k=args.k)
            proto = AccessProtocol(scheme, engine="model")
            adv = module_collision_requests(scheme, n)
            steps.append(proto.read(adv).total_steps)
        fit = fit_power_law(np.array(ns, float), np.array(steps))
        rows.append([alpha, *(f"{s:.0f}" for s in steps), f"{fit.exponent:.3f}"])
    print(format_table(
        ["alpha", *(f"T({n})" for n in ns), "exponent"],
        rows,
        title="Adversarial-workload scaling (model engine)",
    ))
    return 0


def _cmd_run(args) -> int:
    source = sys.stdin.read() if args.file == "-" else open(args.file).read()
    program = assemble(source)
    scheme = HMOS(n=args.n, alpha=args.alpha, q=args.q, k=args.k)
    faults = _build_injector(scheme, args)
    machine = PRAMMachine(
        MeshBackend(
            scheme, engine=args.engine, shards=args.shards,
            kernels=args.kernels, faults=faults,
        ),
        args.n,
    )
    if args.data:
        machine.scatter(0, np.array([int(x) for x in args.data.split(",")]))
    try:
        state = Interpreter(machine).run(program)
    except RuntimeError as exc:
        print(f"run refused: {exc}", file=sys.stderr)
        return 1
    print(f"halted after {state.rounds} rounds "
          f"({state.read_steps} read + {state.write_steps} write steps, "
          f"{machine.cost:.0f} mesh steps)")
    if args.dump:
        count = int(args.dump)
        print("MEM[0:%d] = %s" % (count, machine.gather(0, count).tolist()))
    return 0


def _cmd_experiments(args) -> int:
    from repro.experiments import list_table, run

    if args.run:
        return run(args.run, workers=args.workers)
    print(list_table())
    print("\nRun with: python -m repro experiments --run E4 E8   (or pytest benchmarks/)")
    return 0


def _cmd_check(args) -> int:
    if args.check_command == "fuzz":
        if (args.workers and args.workers > 1) or args.profile != "default":
            # Sweep-runner path: direct case generation + process pool
            # over the shared artifact cache (no hypothesis needed).
            # Non-default profiles only exist on this path, so they take
            # it even at --workers 1.
            from repro.check.fuzz import run_fuzz_parallel

            report = run_fuzz_parallel(
                seed=args.seed,
                cases=args.cases,
                workers=args.workers,
                profile=args.profile,
                artifact_dir=args.dir,
            )
            print(report.summary())
            return 0 if report.ok else 1
        try:
            from repro.check.fuzz import run_fuzz
        except ImportError:
            print(
                "repro check fuzz requires the 'hypothesis' package "
                "(pip install 'repro[test]'), or use --workers N",
                file=sys.stderr,
            )
            return 2
        report = run_fuzz(seed=args.seed, cases=args.cases, artifact_dir=args.dir)
        print(report.summary())
        return 0 if report.ok else 1
    # replay
    from repro.check.fuzz import replay
    from repro.check.oracle import DivergenceError

    try:
        report = replay(args.artifact)
    except DivergenceError as exc:
        print(f"divergence still reproduces: {exc}")
        return 1
    print(
        f"artifact passes: {report.steps_checked} steps checked, "
        f"{report.steps_skipped} skipped ({report.case.describe()})"
    )
    return 0


def _trace_workload(scheme, args):
    """The recorded request stream: one write step, then reads."""
    from repro.protocol.access import StepRequest

    if args.workload == "adversarial":
        variables = module_collision_requests(scheme, args.n)
    else:
        variables = np.unique(
            (np.arange(args.n, dtype=np.int64) * 7919) % scheme.num_variables
        )[: args.n]
    steps = [StepRequest("write", variables, variables)]
    steps.extend(StepRequest("read", variables) for _ in range(args.steps - 1))
    return steps


def _cmd_trace(args) -> int:
    import repro.obs as obs

    if args.trace_command == "run":
        from repro.protocol import SimulationReport
        from repro.protocol.access import StepError

        scheme = HMOS(n=args.n, alpha=args.alpha, q=args.q, k=args.k)
        faults = _build_injector(scheme, args)
        proto = AccessProtocol(
            scheme, engine=args.engine, shards=args.shards,
            kernels=args.kernels, faults=faults,
        )
        steps = _trace_workload(scheme, args)
        with obs.capture() as tracer:
            results = proto.run_steps(steps, on_error="record")
        out = obs.write_jsonl(tracer, args.out)
        print(f"trace: {len(tracer.events)} events -> {out}")
        print(f"kernel backend: {proto.kernels}")
        if args.perfetto:
            chrome = obs.write_chrome_trace(tracer, args.perfetto)
            print(f"perfetto: open {chrome} at https://ui.perfetto.dev")
        print()
        print(obs.stage_table(tracer.events))
        refused = [r for r in results if isinstance(r, StepError)]
        for err in refused:
            print(f"step {err.index} refused: {err.message}")
        report = SimulationReport(kernels=proto.kernels)
        report.extend(r for r in results if not isinstance(r, StepError))
        trace_bd = obs.stage_breakdown(tracer.events)
        report_bd = report.breakdown()
        agree = all(
            trace_bd[key] == report_bd[key] for key in report_bd
        )
        print(
            f"\nper-stage totals vs SimulationReport.breakdown(): "
            f"{'agree' if agree else 'DISAGREE'}"
        )
        return 0 if agree else 1
    if args.trace_command == "summarize":
        header, events = obs.read_jsonl(args.trace)
        print(obs.summary_text(header, events))
        return 0
    # diff
    _, events_a = obs.read_jsonl(args.a)
    _, events_b = obs.read_jsonl(args.b)
    from pathlib import Path as _P

    print(obs.diff_table(
        events_a, events_b, label_a=_P(args.a).stem, label_b=_P(args.b).stem
    ))
    return 0


def _serve_config(args):
    """ServeConfig from the shared scheme/fault/pool flags."""
    from repro.hmos.faults import parse_fault_event
    from repro.serve.server import ServeConfig

    schedule = tuple(parse_fault_event(text) for text in (args.fail_at or ()))
    nodes = (
        tuple(int(x) for x in args.fail_nodes.split(","))
        if args.fail_nodes
        else ()
    )
    procs = (
        tuple(int(x) for x in args.fail_processors.split(","))
        if args.fail_processors
        else ()
    )
    return ServeConfig(
        n=args.n,
        alpha=args.alpha,
        q=args.q,
        k=args.k,
        pool=args.pool,
        window_max=args.window,
        inflight_max=args.inflight,
        retain_max=args.retain,
        drr_quantum=args.quantum,
        failed_nodes=nodes,
        failed_processors=procs,
        fault_schedule=schedule,
        fault_machine=args.fault_machine,
        seed=args.seed,
        kernels=args.kernels,
    )


def _add_serve_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--pool", type=int, default=1,
                        help="warm machines (HMOS.cached pool slots)")
    parser.add_argument("--window", type=int, default=16,
                        help="max requests per batching window per machine")
    parser.add_argument("--inflight", type=int, default=32,
                        help="per-session admission budget")
    parser.add_argument("--fault-machine", type=int, default=0,
                        help="pool slot the --fail-* flags degrade")
    parser.add_argument("--retain", type=int, default=256,
                        help="retained outcomes per RESUME idempotency scope")
    parser.add_argument("--quantum", type=int, default=None,
                        help="fair-share DRR quantum in processor slots "
                        "(default: n // window)")
    parser.add_argument("--seed", type=int, default=0)


def _cmd_serve(args) -> int:
    import asyncio

    import repro.obs as obs

    from repro.serve.server import start_server

    config = _serve_config(args)

    if args.procs > 1:
        from repro.serve.multiproc import run_multiproc

        def _ready(port: int) -> None:
            degraded = " (degraded pool slot %d)" % config.fault_machine if (
                config.has_faults
            ) else ""
            print(
                f"repro serve: n={config.n} procs={args.procs} "
                f"window={config.window_max} listening on "
                f"{args.host}:{port}{degraded} "
                f"(tenants pinned by crc32 % {args.procs})",
                flush=True,
            )

        try:
            run_multiproc(
                config, args.procs, host=args.host, port=args.port,
                on_ready=_ready,
            )
            print("repro serve: stopped")
        except KeyboardInterrupt:
            print("repro serve: interrupted")
        return 0

    async def _run() -> None:
        handle = await start_server(config, host=args.host, port=args.port)
        degraded = " (degraded pool slot %d)" % config.fault_machine if (
            config.has_faults
        ) else ""
        print(
            f"repro serve: n={config.n} pool={config.pool} "
            f"window={config.window_max} listening on "
            f"{args.host}:{handle.port}{degraded}",
            flush=True,
        )
        await handle.wait_stopped()
        print(
            f"repro serve: stopped after "
            f"{sum(m.batches for m in handle.core.machines)} batch(es)"
        )

    try:
        if args.trace or args.perfetto:
            with obs.capture() as tracer:
                asyncio.run(_run())
            if args.trace:
                print(f"trace: {obs.write_jsonl(tracer, args.trace)}")
            if args.perfetto:
                print(f"perfetto: open {obs.write_chrome_trace(tracer, args.perfetto)}"
                      " at https://ui.perfetto.dev")
        else:
            asyncio.run(_run())
    except KeyboardInterrupt:
        print("repro serve: interrupted")
    return 0


def _cmd_client(args) -> int:
    from repro.util import format_table as _table

    config = _serve_config(args)
    if args.loadgen:
        from repro.serve.loadgen import run_loadgen

        fleets = tuple(int(x) for x in args.fleets.split(","))
        windows = tuple(int(x) for x in args.windows.split(","))
        frontier = run_loadgen(
            scheme=dict(n=config.n, alpha=config.alpha, q=config.q, k=config.k),
            engine="model",
            fleets=fleets,
            windows=windows,
            requests=args.requests,
            batch=args.batch,
            seed=args.seed,
            pipeline=args.pipeline,
            procs=args.procs,
            out=args.out,
        )
        print(_table(
            ["fleet", "window", "delivered", "steps/req",
             "p50 ms", "p99 ms", "wall s"],
            [
                [s["fleet"], s["window"], s["delivered"],
                 f"{s['mesh_steps_per_request']:.1f}"
                 if s["mesh_steps_per_request"] is not None else "-",
                 f"{1e3 * s['latency_p50']:.2f}"
                 if s["latency_p50"] is not None else "-",
                 f"{1e3 * s['latency_p99']:.2f}"
                 if s["latency_p99"] is not None else "-",
                 f"{s['wall_seconds']:.3f}"]
                for s in frontier["samples"]
            ],
            title=f"loadgen frontier: {len(fleets)} fleet size(s) x "
            f"{len(windows)} window(s), procs={args.procs} "
            f"(seed {args.seed})",
        ))
        if args.out:
            print(f"\nfrontier written to {args.out}")
        return 0
    if args.scripted:
        from repro.serve.harness import ScriptedFleet

        run = ScriptedFleet(
            config,
            clients=args.clients,
            requests=args.requests,
            batch=args.batch,
            seed=args.seed,
            fault_clients=args.fault_clients,
        ).run()
        delivered, refused, rejected = run.delivered, run.refused, run.rejected
        counters, machines = run.counters, run.machines
        certified = run.certified
        print(f"scripted fleet transcript digest: {run.transcript_digest}")
    else:
        from repro.serve.client import run_fleet

        host, port = None, 0
        if args.connect:
            host, port_s = args.connect.rsplit(":", 1)
            port = int(port_s)
        report = run_fleet(
            config,
            host=host,
            port=port,
            clients=args.clients,
            requests=args.requests,
            batch=args.batch,
            seed=args.seed,
            fault_clients=args.fault_clients,
            pipeline=args.pipeline,
            certify=not args.no_certify,
            shutdown=args.shutdown,
        )
        delivered, refused, rejected = (
            report.delivered, report.refused, report.rejected,
        )
        counters, machines = report.counters, report.machines
        certified = report.certified
    requests = args.clients * args.requests
    batches = counters.get("serve.batches", 0)
    merged = counters.get("serve.merged_steps", 0)
    print(_table(
        ["machine", "requests", "batches", "steps", "degraded", "state digest"],
        [
            [m["machine"], m["requests"], m["batches"], m["steps"],
             "yes" if m["degraded"] else "no", m["state_digest"]]
            for m in machines
        ],
        title=f"{args.clients} clients x {args.requests} requests "
        f"(seed {args.seed})",
    ))
    amortized = merged / requests if requests else 0.0
    print(
        f"\n{delivered} delivered, {refused} refused (degraded), "
        f"{rejected} rejected (admission); {batches} batch(es), "
        f"{merged} coalesced step(s) = {amortized:.2f} steps/request"
    )
    if certified is not None:
        print(
            "certified: batched execution byte-identical to sequential replay"
            if certified
            else "CERTIFICATION FAILED"
        )
        return 0 if certified else 1
    return 0


def _cmd_kernels(args) -> int:
    """List kernel backends and microbench the arbitration hot loop."""
    import time

    from repro.mesh import Mesh, SteppingCore, available_backends

    backends = available_backends()
    print(format_table(
        ["backend", "available", "detail"],
        [[b["name"], "yes" if b["available"] else "no", b["detail"]]
         for b in backends],
        title="kernel backends",
    ))
    # Arbitration microbench: route one full random permutation per
    # repetition (every node sends one packet; the link-arbitration
    # scatter dominates).  Warm-up runs first so JIT compilation and
    # buffer growth stay outside the timed region.
    mesh = Mesh(args.side)
    rng = np.random.default_rng(args.seed)
    batches = [(
        np.arange(mesh.n, dtype=np.int64),
        rng.permutation(mesh.n).astype(np.int64),
    )]
    names = ["numpy"]
    if any(b["name"] == "numba" and b["available"] for b in backends):
        names.append("numba")
    if args.python:
        names.append("python")
    timings: dict[str, float] = {}
    for name in names:
        core = SteppingCore(mesh, kernels=name)
        core.run(batches)  # warm-up (JIT + allocation)
        reps = 0
        t0 = time.perf_counter()
        while True:
            core.run(batches)
            reps += 1
            elapsed = time.perf_counter() - t0
            if elapsed >= args.seconds:
                break
        timings[name] = elapsed / reps
    base = timings["numpy"]
    print()
    print(format_table(
        ["backend", "ms/route", "vs numpy"],
        [[name, f"{t * 1e3:.3f}", f"{base / t:.2f}x"]
         for name, t in timings.items()],
        title=f"arbitration microbench: {args.side}x{args.side} mesh, "
        f"{mesh.n}-packet permutation, >={args.seconds:g}s per backend",
    ))
    return 0


def _cmd_cache(args) -> int:
    from repro.cache import ArtifactCache

    cache = ArtifactCache(args.dir)
    if args.cache_command == "stats":
        print(cache.summary())
        return 0
    removed = cache.clear(disk=True)
    print(f"removed {removed} artifact(s) from {cache.cache_dir}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Constructive deterministic PRAM simulation on a mesh "
        "(Pietracaprina, Pucci, Sibeyn; SPAA 1994)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("info", help="print the HMOS structure")
    _add_scheme_args(p)
    p.set_defaults(fn=_cmd_info)

    p = sub.add_parser("step", help="simulate one PRAM memory step")
    _add_scheme_args(p)
    _add_shards_arg(p)
    _add_kernels_arg(p)
    _add_fault_args(p)
    p.add_argument("--engine", choices=["cycle", "model"], default="cycle")
    p.add_argument("--workload", choices=["uniform", "adversarial"], default="uniform")
    p.add_argument("--op", choices=["read", "write"], default="read")
    p.set_defaults(fn=_cmd_step)

    p = sub.add_parser("route", help="compare routing strategies")
    p.add_argument("--side", type=int, default=16)
    p.add_argument("--submeshes", type=int, default=16)
    p.add_argument("--hot", type=int, default=8)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--ports", choices=["multi", "single"], default="multi",
                   help="link model: one packet per directed link (multi) "
                   "or per node (single) per step")
    p.set_defaults(fn=_cmd_route)

    p = sub.add_parser("scaling", help="measured scaling exponents")
    p.add_argument("--ns", default="256,1024,4096")
    p.add_argument("--alphas", default="1.5,2.0")
    p.add_argument("--q", type=int, default=3)
    p.add_argument("--k", type=int, default=2)
    p.set_defaults(fn=_cmd_scaling)

    p = sub.add_parser("experiments", help="list or run the E1..E19 experiments")
    p.add_argument("--run", nargs="*", metavar="EID",
                   help="experiment ids to execute (default: list only)")
    p.add_argument("--workers", type=int, default=1,
                   help="run the selected experiments' pytest files as N "
                   "concurrent subprocesses")
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser(
        "check", help="differential verification against the PRAM oracle"
    )
    check_sub = p.add_subparsers(dest="check_command", required=True)
    pf = check_sub.add_parser(
        "fuzz", help="fuzz cycle engine + cost model vs the PRAM oracle"
    )
    pf.add_argument("--seed", type=int, default=0, help="derandomization seed")
    pf.add_argument("--cases", type=int, default=50, help="generated cases")
    pf.add_argument(
        "--dir",
        default="tests/data/repros",
        help="directory for minimized JSON repro artifacts",
    )
    pf.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process-pool sweep runner with N workers (direct seeded "
        "generation instead of the hypothesis engine)",
    )
    pf.add_argument(
        "--profile",
        choices=_PROFILES,
        default="default",
        help="generator mix: 'fault-heavy' makes every case carry "
        "processor faults and a mid-run fault schedule (sweep-runner "
        "path only; implies it even at --workers 1)",
    )
    pf.set_defaults(fn=_cmd_check)
    pr = check_sub.add_parser("replay", help="re-execute a repro artifact")
    pr.add_argument("artifact", help="path to a divergence_*.json artifact")
    pr.set_defaults(fn=_cmd_check)

    p = sub.add_parser(
        "trace", help="record, summarize, or diff observability traces"
    )
    trace_sub = p.add_subparsers(dest="trace_command", required=True)
    pt = trace_sub.add_parser(
        "run", help="record one run_steps workload to a trace file"
    )
    _add_scheme_args(pt)
    _add_shards_arg(pt)
    _add_kernels_arg(pt)
    _add_fault_args(pt)
    pt.add_argument("--engine", choices=["cycle", "model"], default="cycle")
    pt.add_argument("--workload", choices=["uniform", "adversarial"],
                    default="uniform")
    pt.add_argument("--steps", type=int, default=3,
                    help="memory steps to record (1 write + N-1 reads)")
    pt.add_argument("--out", default="trace.jsonl",
                    help="JSONL trace output path")
    pt.add_argument("--perfetto", default=None, metavar="PATH",
                    help="also export a Chrome trace-event JSON "
                    "(loadable in Perfetto / chrome://tracing)")
    pt.set_defaults(fn=_cmd_trace)
    pt = trace_sub.add_parser("summarize", help="per-stage table from a trace")
    pt.add_argument("trace", help="path to a .jsonl trace")
    pt.set_defaults(fn=_cmd_trace)
    pt = trace_sub.add_parser(
        "diff", help="localize step-count deltas between two traces"
    )
    pt.add_argument("a", help="baseline trace (.jsonl)")
    pt.add_argument("b", help="comparison trace (.jsonl)")
    pt.set_defaults(fn=_cmd_trace)

    p = sub.add_parser(
        "kernels",
        help="list kernel backends and microbench the arbitration loop",
    )
    p.add_argument("--side", type=int, default=32,
                   help="mesh side for the microbench (n = side^2 packets)")
    p.add_argument("--seconds", type=float, default=1.0,
                   help="minimum measured time per backend")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--python", action="store_true",
                   help="also time the plain-Python kernel loops "
                   "(slow; the bit-identity reference backend)")
    p.set_defaults(fn=_cmd_kernels)

    p = sub.add_parser("cache", help="inspect or clear the HMOS artifact cache")
    cache_sub = p.add_subparsers(dest="cache_command", required=True)
    for name, help_ in (
        ("stats", "print cache location, artifacts, and session counters"),
        ("clear", "remove all persisted artifacts (every version)"),
    ):
        pc = cache_sub.add_parser(name, help=help_)
        pc.add_argument(
            "--dir",
            default=None,
            help="cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
        )
        pc.set_defaults(fn=_cmd_cache)

    p = sub.add_parser(
        "serve", help="asyncio JSON-lines simulation server (repro.serve/1)"
    )
    _add_scheme_args(p)
    _add_kernels_arg(p)
    _add_fault_args(p)
    _add_serve_args(p)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0,
                   help="listen port (0 = ephemeral, printed at boot)")
    p.add_argument("--procs", type=int, default=1,
                   help="worker processes behind one listener (tenants "
                   "pinned by stable hash; 1 = single-process)")
    p.add_argument("--trace", default=None, metavar="PATH",
                   help="write a JSONL obs trace at shutdown")
    p.add_argument("--perfetto", default=None, metavar="PATH",
                   help="write a Chrome trace-event JSON at shutdown")
    p.set_defaults(fn=_cmd_serve)

    p = sub.add_parser(
        "client", help="seeded client fleet against a repro.serve server"
    )
    _add_scheme_args(p)
    _add_kernels_arg(p)
    _add_fault_args(p)
    _add_serve_args(p)
    p.add_argument("--connect", default=None, metavar="HOST:PORT",
                   help="target a live server (default: boot one in-process)")
    p.add_argument("--clients", type=int, default=4)
    p.add_argument("--requests", type=int, default=20,
                   help="requests per client")
    p.add_argument("--batch", type=int, default=3,
                   help="max variables per request")
    p.add_argument("--fault-clients", type=int, default=0,
                   help="pin the first K clients to the degraded pool slot")
    p.add_argument("--pipeline", type=int, default=8,
                   help="client-side inflight pipelining depth")
    p.add_argument("--scripted", action="store_true",
                   help="deterministic in-process harness (no sockets)")
    p.add_argument("--no-certify", action="store_true",
                   help="skip the batched-vs-sequential certification")
    p.add_argument("--shutdown", action="store_true",
                   help="send SHUTDOWN to the --connect server afterwards")
    p.add_argument("--loadgen", action="store_true",
                   help="sweep fleet sizes x windows against hermetic "
                   "servers and chart the latency/amortization frontier")
    p.add_argument("--fleets", default="2,4,8", metavar="N,N,...",
                   help="fleet sizes the loadgen sweeps")
    p.add_argument("--windows", default="1,4,16", metavar="N,N,...",
                   help="window widths the loadgen sweeps")
    p.add_argument("--procs", type=int, default=1,
                   help="worker processes per loadgen server")
    p.add_argument("--out", default=None, metavar="PATH",
                   help="write the loadgen frontier JSON here")
    p.set_defaults(fn=_cmd_client)

    p = sub.add_parser("run", help="run a PRAM assembly program on the mesh")
    p.add_argument("file", help="assembly file, or - for stdin")
    _add_scheme_args(p)
    _add_shards_arg(p)
    _add_kernels_arg(p)
    _add_fault_args(p)
    p.add_argument("--engine", choices=["cycle", "model"], default="model")
    p.add_argument("--data", help="comma-separated ints preloaded at MEM[0]")
    p.add_argument("--dump", help="print MEM[0:N] after the run")
    p.set_defaults(fn=_cmd_run)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

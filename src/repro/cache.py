"""Version-stamped artifact cache for expensive HMOS building blocks.

Every sweep (E8/E13-E17), fuzz campaign, and long PRAM run used to
rebuild the same immutable artifacts once per case: the
:class:`~repro.bibd.subgraph.BalancedSubgraph` incidence structures
(whose *materialized* neighbor/rank/degree tables are the protocol hot
path), the :class:`~repro.hmos.placement.Placement` graphs, and the
initial target-set row.  This module caches them at two granularities:

* **subgraph artifacts**, keyed ``(q, d, m)`` — the per-level incidence
  tables, shared by every scheme that uses the same level graph;
* **scheme artifacts**, keyed ``(n, alpha, q, k, curve)`` — the fully
  assembled immutable parts of one HMOS (params, mesh, materialized
  placement, initial target-set row).

Both layers are held in process memory and mirrored on disk (NumPy
``.npz`` files — no pickle) under ``$REPRO_CACHE_DIR`` or
``~/.cache/repro`` in a per-version subdirectory.  Consistency rules:

* **versioning** — artifacts embed :data:`CACHE_VERSION`; a stamp
  mismatch (or any unreadable/corrupt file) is treated as a miss and
  the artifact is rebuilt and atomically rewritten;
* **atomicity** — writes go to a unique temp file in the same directory
  followed by ``os.replace``, so concurrent readers only ever observe
  absent or complete files;
* **isolation** — :meth:`ArtifactCache.scheme` returns a *new*
  :class:`~repro.hmos.scheme.HMOS` per call around the shared immutable
  parts, with a fresh :class:`~repro.hmos.memory.CopyMemory`: cached
  schemes never share mutable memory state.

``repro cache stats`` / ``repro cache clear`` expose the disk layer on
the command line.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.bibd.subgraph import BalancedSubgraph
from repro.hmos.params import HMOSParams
from repro.hmos.placement import Placement
from repro.hmos.scheme import HMOS
from repro.mesh.topology import Mesh
from repro.obs import tracer as _obs

__all__ = [
    "CACHE_VERSION",
    "ArtifactCache",
    "CacheStats",
    "default_cache",
    "reset_default_cache",
]

#: Bump when the artifact layout or the semantics of any cached table
#: change; on-disk artifacts carrying a different stamp are rebuilt.
CACHE_VERSION = 1

_ENV_DIR = "REPRO_CACHE_DIR"


def _default_dir() -> Path:
    env = os.environ.get(_ENV_DIR)
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro"


@dataclass
class CacheStats:
    """Hit/miss counters of one :class:`ArtifactCache` instance."""

    memory_hits: int = 0
    memory_misses: int = 0
    disk_hits: int = 0
    disk_misses: int = 0
    disk_stale: int = 0  # version mismatch or unreadable artifact
    builds: int = 0

    def as_dict(self) -> dict:
        return dict(self.__dict__)

    @property
    def hit_rate(self) -> float:
        total = self.memory_hits + self.memory_misses
        return self.memory_hits / total if total else 0.0


@dataclass
class _SchemeParts:
    """Immutable skeleton shared by all cached instances of one key."""

    params: HMOSParams
    mesh: Mesh
    placement: Placement
    initial_row: np.ndarray = field(repr=False)


class ArtifactCache:
    """In-process + on-disk cache of HMOS artifacts.

    Parameters
    ----------
    cache_dir : path, optional
        Disk location; defaults to ``$REPRO_CACHE_DIR`` or
        ``~/.cache/repro``.  Artifacts live in a ``v{CACHE_VERSION}``
        subdirectory so version bumps never read stale layouts.
    persist : bool
        Set False for a purely in-process cache (no disk I/O).
    """

    def __init__(self, cache_dir: str | Path | None = None, *, persist: bool = True):
        self.cache_dir = Path(cache_dir) if cache_dir is not None else _default_dir()
        self.persist = persist
        self.stats = CacheStats()
        self._subgraphs: dict[tuple, BalancedSubgraph] = {}
        self._schemes: dict[tuple, _SchemeParts] = {}

    def _tally(self, field: str) -> None:
        """Bump one :class:`CacheStats` counter, mirrored to the tracer."""
        setattr(self.stats, field, getattr(self.stats, field) + 1)
        tracer = _obs.current()
        if tracer.enabled:
            tracer.count(f"cache.{field}")

    # -- keys and files -----------------------------------------------------

    @property
    def version_dir(self) -> Path:
        return self.cache_dir / f"v{CACHE_VERSION}"

    @staticmethod
    def _digest(*parts) -> str:
        text = "|".join(repr(p) for p in parts)
        return hashlib.sha256(text.encode()).hexdigest()[:12]

    def _subgraph_path(self, q: int, d: int, m: int) -> Path:
        return self.version_dir / f"subgraph_q{q}_d{d}_m{m}.npz"

    def _scheme_path(self, n: int, alpha: float, q: int, k: int, curve: str) -> Path:
        digest = self._digest("scheme", n, alpha, q, k, curve)
        return self.version_dir / f"scheme_n{n}_q{q}_k{k}_{curve}_{digest}.npz"

    # -- atomic disk I/O ----------------------------------------------------

    def _write_atomic(self, path: Path, arrays: dict[str, np.ndarray]) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem + ".", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as fh:
                np.savez(fh, **arrays)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def _read(self, path: Path, names: tuple[str, ...]) -> dict | None:
        """Load an artifact; None on absence, corruption, or stale stamp."""
        if not self.persist:
            return None
        try:
            with np.load(path, allow_pickle=False) as data:
                if int(data["version"][0]) != CACHE_VERSION:
                    self._tally("disk_stale")
                    return None
                loaded = {
                    name: np.ascontiguousarray(data[name]) for name in names
                }
                tracer = _obs.current()
                if tracer.enabled:
                    tracer.count(
                        "cache.load_bytes",
                        int(sum(a.nbytes for a in loaded.values())),
                    )
                return loaded
        except FileNotFoundError:
            return None
        except Exception:
            # Partial/corrupt artifact (e.g. interrupted writer on a
            # filesystem without atomic replace): rebuild and overwrite.
            self._tally("disk_stale")
            return None

    # -- subgraph artifacts -------------------------------------------------

    def subgraph(self, q: int, d: int, m: int) -> BalancedSubgraph:
        """A *materialized* ``BalancedSubgraph(q, d, m)`` (shared instance)."""
        key = (int(q), int(d), int(m))
        hit = self._subgraphs.get(key)
        if hit is not None:
            self._tally("memory_hits")
            return hit
        self._tally("memory_misses")
        graph = BalancedSubgraph(*key)
        path = self._subgraph_path(*key)
        loaded = self._read(path, ("nbr", "rank", "outdeg"))
        if loaded is not None:
            self._tally("disk_hits")
            graph.attach_tables(loaded["nbr"], loaded["rank"], loaded["outdeg"])
        else:
            self._tally("disk_misses")
            self._tally("builds")
            nbr, rank, outdeg = graph.tables()
            if self.persist:
                self._write_atomic(
                    path,
                    {
                        "version": np.array([CACHE_VERSION], dtype=np.int64),
                        "nbr": nbr,
                        "rank": rank,
                        "outdeg": outdeg,
                    },
                )
        self._subgraphs[key] = graph
        return graph

    # -- scheme artifacts ---------------------------------------------------

    def scheme(
        self, n: int, alpha: float, q: int = 3, k: int = 2, *, curve: str = "morton"
    ) -> HMOS:
        """A cache-backed HMOS instance (fresh memory, shared skeleton)."""
        key = (int(n), float(alpha), int(q), int(k), str(curve))
        parts = self._schemes.get(key)
        if parts is not None:
            self._tally("memory_hits")
            return HMOS._from_parts(
                parts.params, parts.mesh, parts.placement, parts.initial_row
            )
        self._tally("memory_misses")
        params = HMOSParams(n=n, alpha=alpha, q=q, k=k)
        mesh = Mesh(params.side, curve=curve)
        graphs = [
            self.subgraph(params.q, params.d[i], params.m[i])
            for i in range(params.k)
        ]
        placement = Placement(params, mesh, graphs=graphs)
        path = self._scheme_path(*key)
        loaded = self._read(path, ("initial_row",))
        if loaded is not None:
            self._tally("disk_hits")
            initial_row = loaded["initial_row"].astype(bool)
        else:
            self._tally("disk_misses")
            self._tally("builds")
            probe = HMOS._from_parts(params, mesh, placement)
            initial_row = probe.initial_target_masks(1).astype(bool)
            if self.persist:
                self._write_atomic(
                    path,
                    {
                        "version": np.array([CACHE_VERSION], dtype=np.int64),
                        "initial_row": initial_row,
                    },
                )
        parts = _SchemeParts(
            params=params,
            mesh=mesh,
            placement=placement,
            initial_row=initial_row,
        )
        self._schemes[key] = parts
        return HMOS._from_parts(params, mesh, placement, initial_row)

    # -- maintenance --------------------------------------------------------

    def disk_entries(self) -> list[Path]:
        """Artifact files of the *current* version (sorted)."""
        if not self.version_dir.is_dir():
            return []
        return sorted(p for p in self.version_dir.glob("*.npz") if p.is_file())

    def disk_bytes(self) -> int:
        return sum(p.stat().st_size for p in self.disk_entries())

    def clear(self, *, memory: bool = True, disk: bool = False) -> int:
        """Drop cached artifacts; returns the number of disk files removed.

        ``disk=True`` also removes persisted artifacts of *every*
        version (explicit invalidation — the versioned layout already
        ignores stale stamps automatically).
        """
        removed = 0
        if memory:
            self._subgraphs.clear()
            self._schemes.clear()
        if disk and self.cache_dir.is_dir():
            for sub in sorted(self.cache_dir.glob("v*")):
                if not sub.is_dir():
                    continue
                for f in sub.glob("*"):
                    try:
                        f.unlink()
                        removed += 1
                    except OSError:
                        pass
                try:
                    sub.rmdir()
                except OSError:
                    pass
        return removed

    def summary(self) -> str:
        """Human-readable ``repro cache stats`` payload."""
        entries = self.disk_entries()
        lines = [
            f"cache dir: {self.cache_dir} (version v{CACHE_VERSION})",
            f"disk: {len(entries)} artifact(s), {self.disk_bytes() / 1e6:.2f} MB",
            f"memory: {len(self._subgraphs)} subgraph(s), "
            f"{len(self._schemes)} scheme(s)",
            "session: "
            + ", ".join(f"{k}={v}" for k, v in self.stats.as_dict().items()),
        ]
        for p in entries:
            lines.append(f"  {p.name}  {p.stat().st_size / 1e6:.2f} MB")
        return "\n".join(lines)


_default: ArtifactCache | None = None


def default_cache() -> ArtifactCache:
    """The process-wide cache (created on first use; honors
    ``$REPRO_CACHE_DIR`` at creation time)."""
    global _default
    if _default is None:
        _default = ArtifactCache()
    return _default


def reset_default_cache() -> None:
    """Forget the process-wide cache (tests; re-reads the environment)."""
    global _default
    _default = None

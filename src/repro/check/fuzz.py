"""Deterministic differential fuzzer with shrinking and repro artifacts.

``run_fuzz(seed, cases)`` drives Hypothesis over
:func:`repro.check.strategies.case_specs`, executing every generated
case through the :class:`~repro.check.oracle.DifferentialOracle`.  The
run is fully deterministic for a given ``(seed, cases)`` pair (explicit
``@seed``, no example database), so CI failures reproduce locally.

On the first divergence Hypothesis shrinks the case — fewer steps, fewer
requests, smaller parameters — and the *minimized* failing case is
serialized as a JSON artifact under ``tests/data/repros/`` (see
:mod:`repro.check.case` for the format).  ``replay`` re-executes an
artifact, which is how a written-down failure becomes a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from pathlib import Path

from repro.check.case import CaseSpec, StepSpec, load_artifact, save_artifact
from repro.check.oracle import OracleReport, run_case

__all__ = [
    "DEFAULT_ARTIFACT_DIR",
    "FuzzReport",
    "replay",
    "run_fuzz",
    "run_fuzz_parallel",
    "shrink_case",
]

DEFAULT_ARTIFACT_DIR = Path("tests") / "data" / "repros"


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    ok: bool
    seed: int
    requested_cases: int
    executed: int  # oracle executions incl. shrink attempts
    error: str | None = None
    case: CaseSpec | None = None  # minimized failing case
    artifact: Path | None = None

    def summary(self) -> str:
        if self.ok:
            return (
                f"fuzz ok: {self.requested_cases} cases (seed {self.seed}), "
                f"zero divergences between cycle engine, cost model, and "
                f"PRAM oracle"
            )
        return (
            f"fuzz FAILED (seed {self.seed}, after {self.executed} "
            f"executions): {self.error}\n"
            f"minimized case: {self.case.describe() if self.case else '?'}\n"
            f"repro artifact: {self.artifact}"
        )


def run_fuzz(
    seed: int = 0,
    cases: int = 50,
    *,
    artifact_dir: str | Path = DEFAULT_ARTIFACT_DIR,
    corrupt_read=None,
    case_runner=None,
) -> FuzzReport:
    """Fuzz the protocol stack against the PRAM oracle.

    Parameters
    ----------
    seed : int
        Derandomization seed; same seed, same campaign.
    cases : int
        Number of generated cases (shrink attempts come on top).
    artifact_dir : path
        Where a minimized failing case is written.
    corrupt_read : callable, optional
        Harness self-test hook, forwarded to the oracle.
    case_runner : callable, optional
        Replacement for :func:`repro.check.oracle.run_case`
        (benchmark/self-test hook); receives one CaseSpec.

    Returns
    -------
    FuzzReport
        ``ok=True`` and the case count on success; on divergence,
        ``ok=False`` with the minimized case and its artifact path.
    """
    from hypothesis import HealthCheck, given
    from hypothesis import seed as hypothesis_seed
    from hypothesis import settings

    from repro.check.strategies import case_specs

    executed = [0]
    failing: dict[str, CaseSpec] = {}

    @settings(
        max_examples=cases,
        database=None,
        derandomize=False,
        deadline=None,
        print_blob=False,
        suppress_health_check=list(HealthCheck),
    )
    @hypothesis_seed(seed)
    @given(case=case_specs())
    def campaign(case: CaseSpec) -> None:
        executed[0] += 1
        try:
            if case_runner is not None:
                case_runner(case)
            else:
                run_case(case, corrupt_read=corrupt_read)
        except Exception:
            # Hypothesis replays the minimal example last, so after
            # shrinking this holds the minimized failing case.
            failing["case"] = case
            raise

    try:
        campaign()
    except Exception as exc:
        case = failing.get("case")
        artifact = None
        if case is not None:
            artifact = save_artifact(
                case, artifact_dir, seed=seed, error=str(exc)
            )
        return FuzzReport(
            ok=False,
            seed=seed,
            requested_cases=cases,
            executed=executed[0],
            error=str(exc),
            case=case,
            artifact=artifact,
        )
    return FuzzReport(
        ok=True, seed=seed, requested_cases=cases, executed=executed[0]
    )


def _execute_shard(payload: dict) -> dict:
    """Process-pool worker: run one shard of cases through the oracle.

    Takes/returns plain dicts (pickle-friendly).  Failures carry the
    original campaign index so the parent can pick the deterministic
    first failure regardless of shard interleaving.
    """
    failures = []
    for index, case_dict in zip(payload["indices"], payload["cases"]):
        case = CaseSpec.from_dict(case_dict)
        try:
            run_case(case)
        except Exception as exc:  # noqa: BLE001 - divergence reporting
            failures.append(
                {"index": index, "case": case_dict, "error": str(exc)}
            )
    return {"executed": len(payload["cases"]), "failures": failures}


def _case_fails(case: CaseSpec) -> str | None:
    """The divergence message if the oracle rejects ``case``, else None."""
    try:
        run_case(case)
    except Exception as exc:  # noqa: BLE001 - divergence reporting
        return str(exc)
    return None


def _shrunk_steps(case: CaseSpec) -> list[CaseSpec]:
    """Candidate cases with one step dropped (front first)."""
    if len(case.steps) <= 1:
        return []
    return [
        replace(case, steps=case.steps[:i] + case.steps[i + 1 :])
        for i in range(len(case.steps))
    ]


def _chop_step(step: StepSpec, keep: list[int]) -> StepSpec:
    """Restrict a step to the request positions in ``keep``."""
    pick = lambda seq: None if seq is None else tuple(seq[i] for i in keep)  # noqa: E731
    return StepSpec(
        op=step.op,
        variables=tuple(step.variables[i] for i in keep),
        values=pick(step.values),
        is_write=pick(step.is_write),
        workload=step.workload,
    )


def shrink_case(
    case: CaseSpec, fails, *, max_attempts: int = 250
) -> CaseSpec:
    """Greedy minimization of a failing case (the parallel path's
    substitute for Hypothesis shrinking).

    ``fails(candidate)`` must return truthy while the failure persists.
    Passes, repeated to a fixpoint within the attempt budget: drop whole
    steps, clear each fault dimension (memory faults, processor faults,
    mid-run schedule), then binary-chop each step's request list (halves
    first, single requests second).  The result still satisfies
    ``fails``.
    """
    attempts = 0

    def try_candidate(cand: CaseSpec) -> bool:
        nonlocal attempts
        if attempts >= max_attempts:
            return False
        attempts += 1
        return bool(fails(cand))

    improved = True
    while improved and attempts < max_attempts:
        improved = False
        # Pass 1: drop steps.
        for cand in _shrunk_steps(case):
            if try_candidate(cand):
                case = cand
                improved = True
                break
        # Pass 2: clear fault state, one dimension at a time (memory
        # faults, processor faults, mid-run schedule), so the surviving
        # dimension is exactly the one the divergence needs.
        for fault_field in ("failed_nodes", "failed_processors", "fault_schedule"):
            if getattr(case, fault_field):
                cand = replace(case, **{fault_field: ()})
                if try_candidate(cand):
                    case = cand
                    improved = True
        # Pass 3: shrink request lists, coarse halves then singles.
        for si, step in enumerate(case.steps):
            size = len(step.variables)
            if size <= 1:
                continue
            half = size // 2
            chunks = [list(range(half)), list(range(half, size))]
            chunks += [[i] for i in range(size)]
            for keep in chunks:
                if len(keep) == size:
                    continue
                steps = (
                    case.steps[:si]
                    + (_chop_step(step, keep),)
                    + case.steps[si + 1 :]
                )
                cand = replace(case, steps=steps)
                if try_candidate(cand):
                    case = cand
                    improved = True
                    break
    return case


def run_fuzz_parallel(
    seed: int = 0,
    cases: int = 50,
    *,
    workers: int = 1,
    profile: str = "default",
    artifact_dir: str | Path = DEFAULT_ARTIFACT_DIR,
) -> FuzzReport:
    """Sweep-runner fuzz campaign: direct case generation, sharded
    oracle execution, greedy shrinking.

    Functionally equivalent to :func:`run_fuzz` — same parameter space,
    same oracle, same artifact format — but built for throughput: cases
    come from a seeded NumPy stream (no Hypothesis engine in the loop)
    and shards run on a process pool whose workers share the HMOS
    artifact cache (:mod:`repro.parallel`).  Deterministic in
    ``(seed, cases, profile)``; the worker count only changes
    wall-clock, not the case stream or which failure is reported (lowest
    campaign index wins).  ``profile`` selects the generator mix (see
    :data:`repro.check.generate.PROFILES`): ``"fault-heavy"`` makes
    every case carry processor faults and a mid-run fault schedule.
    """
    from repro.check.generate import random_cases
    from repro.parallel import parallel_map

    specs = random_cases(seed, cases, profile)
    # Contiguous shards; one pickle round-trip per worker, not per case.
    shard_count = max(1, min(workers, len(specs)))
    bounds = [
        (i * len(specs)) // shard_count for i in range(shard_count + 1)
    ]
    payloads = [
        {
            "indices": list(range(lo, hi)),
            "cases": [c.to_dict() for c in specs[lo:hi]],
        }
        for lo, hi in zip(bounds, bounds[1:])
        if hi > lo
    ]
    # ~10ms of oracle work per case on the configs random_cases draws
    # from — lets tiny campaigns skip the pool instead of losing to its
    # spin-up cost (workers then only change wall-clock on real loads).
    results = parallel_map(
        _execute_shard,
        payloads,
        workers=workers,
        cost_hint=0.01 * len(specs),
    )
    executed = sum(r["executed"] for r in results)
    failures = sorted(
        (f for r in results for f in r["failures"]), key=lambda f: f["index"]
    )
    if not failures:
        return FuzzReport(
            ok=True, seed=seed, requested_cases=cases, executed=executed
        )
    first = failures[0]
    case = CaseSpec.from_dict(first["case"])
    shrink_executed = [0]

    def fails(cand: CaseSpec) -> bool:
        shrink_executed[0] += 1
        return _case_fails(cand) is not None

    minimized = shrink_case(case, fails)
    error = _case_fails(minimized) or first["error"]
    artifact = save_artifact(minimized, artifact_dir, seed=seed, error=error)
    return FuzzReport(
        ok=False,
        seed=seed,
        requested_cases=cases,
        executed=executed + shrink_executed[0] + 1,
        error=error,
        case=minimized,
        artifact=artifact,
    )


def replay(path: str | Path, *, corrupt_read=None) -> OracleReport:
    """Re-execute a repro artifact through the oracle.

    Raises :class:`~repro.check.oracle.DivergenceError` if the recorded
    failure still reproduces; returns the report once it is fixed.
    """
    case, _meta = load_artifact(path)
    return run_case(case, corrupt_read=corrupt_read)

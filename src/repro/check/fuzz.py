"""Deterministic differential fuzzer with shrinking and repro artifacts.

``run_fuzz(seed, cases)`` drives Hypothesis over
:func:`repro.check.strategies.case_specs`, executing every generated
case through the :class:`~repro.check.oracle.DifferentialOracle`.  The
run is fully deterministic for a given ``(seed, cases)`` pair (explicit
``@seed``, no example database), so CI failures reproduce locally.

On the first divergence Hypothesis shrinks the case — fewer steps, fewer
requests, smaller parameters — and the *minimized* failing case is
serialized as a JSON artifact under ``tests/data/repros/`` (see
:mod:`repro.check.case` for the format).  ``replay`` re-executes an
artifact, which is how a written-down failure becomes a regression test.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.check.case import CaseSpec, load_artifact, save_artifact
from repro.check.oracle import OracleReport, run_case

__all__ = ["DEFAULT_ARTIFACT_DIR", "FuzzReport", "replay", "run_fuzz"]

DEFAULT_ARTIFACT_DIR = Path("tests") / "data" / "repros"


@dataclass(frozen=True)
class FuzzReport:
    """Outcome of one fuzzing campaign."""

    ok: bool
    seed: int
    requested_cases: int
    executed: int  # oracle executions incl. shrink attempts
    error: str | None = None
    case: CaseSpec | None = None  # minimized failing case
    artifact: Path | None = None

    def summary(self) -> str:
        if self.ok:
            return (
                f"fuzz ok: {self.requested_cases} cases (seed {self.seed}), "
                f"zero divergences between cycle engine, cost model, and "
                f"PRAM oracle"
            )
        return (
            f"fuzz FAILED (seed {self.seed}, after {self.executed} "
            f"executions): {self.error}\n"
            f"minimized case: {self.case.describe() if self.case else '?'}\n"
            f"repro artifact: {self.artifact}"
        )


def run_fuzz(
    seed: int = 0,
    cases: int = 50,
    *,
    artifact_dir: str | Path = DEFAULT_ARTIFACT_DIR,
    corrupt_read=None,
) -> FuzzReport:
    """Fuzz the protocol stack against the PRAM oracle.

    Parameters
    ----------
    seed : int
        Derandomization seed; same seed, same campaign.
    cases : int
        Number of generated cases (shrink attempts come on top).
    artifact_dir : path
        Where a minimized failing case is written.
    corrupt_read : callable, optional
        Harness self-test hook, forwarded to the oracle.

    Returns
    -------
    FuzzReport
        ``ok=True`` and the case count on success; on divergence,
        ``ok=False`` with the minimized case and its artifact path.
    """
    from hypothesis import HealthCheck, given
    from hypothesis import seed as hypothesis_seed
    from hypothesis import settings

    from repro.check.strategies import case_specs

    executed = [0]
    failing: dict[str, CaseSpec] = {}

    @settings(
        max_examples=cases,
        database=None,
        derandomize=False,
        deadline=None,
        print_blob=False,
        suppress_health_check=list(HealthCheck),
    )
    @hypothesis_seed(seed)
    @given(case=case_specs())
    def campaign(case: CaseSpec) -> None:
        executed[0] += 1
        try:
            run_case(case, corrupt_read=corrupt_read)
        except Exception:
            # Hypothesis replays the minimal example last, so after
            # shrinking this holds the minimized failing case.
            failing["case"] = case
            raise

    try:
        campaign()
    except Exception as exc:
        case = failing.get("case")
        artifact = None
        if case is not None:
            artifact = save_artifact(
                case, artifact_dir, seed=seed, error=str(exc)
            )
        return FuzzReport(
            ok=False,
            seed=seed,
            requested_cases=cases,
            executed=executed[0],
            error=str(exc),
            case=case,
            artifact=artifact,
        )
    return FuzzReport(
        ok=True, seed=seed, requested_cases=cases, executed=executed[0]
    )


def replay(path: str | Path, *, corrupt_read=None) -> OracleReport:
    """Re-execute a repro artifact through the oracle.

    Raises :class:`~repro.check.oracle.DivergenceError` if the recorded
    failure still reproduces; returns the report once it is fixed.
    """
    case, _meta = load_artifact(path)
    return run_case(case, corrupt_read=corrupt_read)

"""Hypothesis strategies over the protocol stack's real parameter space.

The fuzzer explores the cross product the theorems quantify over: mesh
size ``n``, memory exponent ``alpha``, replication ``q``, hierarchy
depth ``k``, tessellation curve, injected node faults, and per-step
request sets drawn from the uniform generator or the adversarial
generators of :mod:`repro.hmos.adversary` (module-collision and
majority-collision attacks), mixed with read/write/mixed operations.

Everything drawn is materialized into a plain :class:`CaseSpec`, so
shrinking operates on explicit variable lists and failures serialize to
self-contained JSON artifacts.

This module imports :mod:`hypothesis` and must only be imported by the
fuzzer / property tests (the core package works without the extra).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from hypothesis import strategies as st

from repro.check.case import CaseSpec, StepSpec
from repro.check.generate import feasible_configs
from repro.check.generate import (  # single source of truth for bounds
    CURVES as _CURVES,
    MAX_FAULTS as _MAX_FAULTS,
    MAX_SCHEDULE_EVENTS as _MAX_SCHEDULE_EVENTS,
    MAX_STEPS as _MAX_STEPS,
    WORKLOADS as _WORKLOADS,
)
from repro.hmos.adversary import (
    doomed_processor_requests,
    majority_collision_requests,
    module_collision_requests,
)
from repro.hmos.faults import EVENT_KINDS, FaultEvent
from repro.hmos.scheme import HMOS

__all__ = ["case_specs", "fault_events", "feasible_configs", "step_specs"]


@lru_cache(maxsize=None)
def _scheme_for(n: int, alpha: float, q: int, k: int) -> HMOS:
    """Read-only HMOS used to *materialize* adversarial request sets at
    generation time (the oracle builds its own fresh instances)."""
    return HMOS(n=n, alpha=alpha, q=q, k=k)


@st.composite
def step_specs(
    draw,
    n: int,
    alpha: float,
    q: int,
    k: int,
    doomed: tuple[int, ...] = (),
) -> StepSpec:
    """One memory step against the given configuration.

    ``doomed`` carries the processor ranks the case's fault state will
    kill, targeted by the ``doomed`` workload (see
    :func:`repro.hmos.adversary.doomed_processor_requests`).
    """
    scheme = _scheme_for(n, alpha, q, k)
    num_vars = scheme.num_variables
    workload = draw(st.sampled_from(_WORKLOADS))
    if workload == "doomed" and not doomed:
        workload = "module"  # nothing to doom; fall back to the module attack
    if workload == "uniform":
        variables = tuple(
            draw(
                st.lists(
                    st.integers(0, num_vars - 1),
                    min_size=1,
                    max_size=n,
                    unique=True,
                )
            )
        )
    else:
        count = draw(st.integers(1, n))
        if workload == "doomed":
            module = draw(
                st.integers(0, scheme.placement.graphs[0].num_outputs - 1)
            )
            picked = doomed_processor_requests(
                scheme, count, doomed=doomed, module=module
            )
        elif workload == "module":
            graph = scheme.placement.graphs[0]
            module = draw(st.integers(0, graph.num_outputs - 1))
            picked = module_collision_requests(scheme, count, module=module)
        else:
            try:
                picked = majority_collision_requests(scheme, count)
            except ValueError:
                # Pool too small to force majorities at this count; the
                # single-module attack is the fallback concentration.
                picked = module_collision_requests(scheme, count)
        variables = tuple(int(v) for v in np.asarray(picked))
    op = draw(st.sampled_from(("read", "write", "mixed")))
    values = is_write = None
    if op in ("write", "mixed"):
        values = tuple(
            draw(
                st.lists(
                    st.integers(0, 10**6),
                    min_size=len(variables),
                    max_size=len(variables),
                )
            )
        )
    if op == "mixed":
        is_write = tuple(
            draw(
                st.lists(
                    st.booleans(),
                    min_size=len(variables),
                    max_size=len(variables),
                )
            )
        )
    return StepSpec(
        op=op,
        variables=variables,
        values=values,
        is_write=is_write,
        workload=workload,
    )


@st.composite
def fault_events(draw, n: int) -> FaultEvent:
    """One mid-run fault event.

    Steps range over ``[0, MAX_STEPS]`` *inclusive*: step 0 (death
    before anything runs) and a step at/past the end of the stream
    (which must never fire) are both edge cases the oracle must handle.
    """
    return FaultEvent(
        step=draw(st.integers(0, _MAX_STEPS)),
        kind=draw(st.sampled_from(EVENT_KINDS)),
        nodes=tuple(
            draw(
                st.lists(
                    st.integers(0, n - 1),
                    min_size=1,
                    max_size=2,
                    unique=True,
                )
            )
        ),
    )


@st.composite
def case_specs(draw) -> CaseSpec:
    """A full differential-oracle scenario."""
    n, alpha, q, k = draw(st.sampled_from(feasible_configs()))
    curve = draw(st.sampled_from(_CURVES))
    failed = tuple(
        draw(
            st.lists(
                st.integers(0, n - 1),
                max_size=_MAX_FAULTS,
                unique=True,
            )
        )
    )
    failed_procs = tuple(
        draw(
            st.lists(
                st.integers(0, n - 1),
                max_size=_MAX_FAULTS,
                unique=True,
            )
        )
    )
    schedule = tuple(
        draw(
            st.lists(
                fault_events(n),
                max_size=_MAX_SCHEDULE_EVENTS,
            )
        )
    )
    doomed = tuple(
        sorted(
            set(failed_procs).union(
                node
                for e in schedule
                if e.kind == "processor"
                for node in e.nodes
            )
        )
    )
    steps = tuple(
        draw(
            st.lists(
                step_specs(n, alpha, q, k, doomed=doomed),
                min_size=1,
                max_size=_MAX_STEPS,
            )
        )
    )
    return CaseSpec(
        n=n,
        alpha=alpha,
        q=q,
        k=k,
        curve=curve,
        failed_nodes=failed,
        failed_processors=failed_procs,
        fault_schedule=schedule,
        steps=steps,
    )

"""Hypothesis strategies over the protocol stack's real parameter space.

The fuzzer explores the cross product the theorems quantify over: mesh
size ``n``, memory exponent ``alpha``, replication ``q``, hierarchy
depth ``k``, tessellation curve, injected node faults, and per-step
request sets drawn from the uniform generator or the adversarial
generators of :mod:`repro.hmos.adversary` (module-collision and
majority-collision attacks), mixed with read/write/mixed operations.

Everything drawn is materialized into a plain :class:`CaseSpec`, so
shrinking operates on explicit variable lists and failures serialize to
self-contained JSON artifacts.

This module imports :mod:`hypothesis` and must only be imported by the
fuzzer / property tests (the core package works without the extra).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from hypothesis import strategies as st

from repro.check.case import CaseSpec, StepSpec
from repro.hmos.adversary import (
    majority_collision_requests,
    module_collision_requests,
)
from repro.hmos.params import HMOSParams
from repro.hmos.scheme import HMOS

__all__ = ["case_specs", "feasible_configs", "step_specs"]

#: Bounds keeping one fuzz case under ~100 ms: small meshes, capped
#: memory (the invariants are size-uniform; the theorems' asymptotics
#: are covered by the E4/E8 benchmarks instead).
_N_CHOICES = (16, 64)
_ALPHA_CHOICES = (1.1, 1.25, 1.5, 2.0)
_Q_CHOICES = (3, 4, 5)
_K_CHOICES = (1, 2, 3)
_MAX_VARIABLES = 20_000
_MAX_STEPS = 4
_MAX_FAULTS = 3
_CURVES = ("morton", "hilbert")
_WORKLOADS = ("uniform", "module", "majority")


@lru_cache(maxsize=1)
def feasible_configs() -> tuple[tuple[int, float, int, int], ...]:
    """All ``(n, alpha, q, k)`` combinations the HMOS can instantiate
    within the fuzz budget, smallest first (Hypothesis shrinks toward
    the front of the list)."""
    out = []
    for n in _N_CHOICES:
        for alpha in _ALPHA_CHOICES:
            for q in _Q_CHOICES:
                for k in _K_CHOICES:
                    try:
                        params = HMOSParams(n=n, alpha=alpha, q=q, k=k)
                    except ValueError:
                        continue
                    if params.num_variables <= _MAX_VARIABLES:
                        out.append((n, alpha, q, k))
    out.sort(key=lambda cfg: (cfg[0], HMOSParams(*cfg).num_variables, cfg[3]))
    return tuple(out)


@lru_cache(maxsize=None)
def _scheme_for(n: int, alpha: float, q: int, k: int) -> HMOS:
    """Read-only HMOS used to *materialize* adversarial request sets at
    generation time (the oracle builds its own fresh instances)."""
    return HMOS(n=n, alpha=alpha, q=q, k=k)


@st.composite
def step_specs(draw, n: int, alpha: float, q: int, k: int) -> StepSpec:
    """One memory step against the given configuration."""
    scheme = _scheme_for(n, alpha, q, k)
    num_vars = scheme.num_variables
    workload = draw(st.sampled_from(_WORKLOADS))
    if workload == "uniform":
        variables = tuple(
            draw(
                st.lists(
                    st.integers(0, num_vars - 1),
                    min_size=1,
                    max_size=n,
                    unique=True,
                )
            )
        )
    else:
        count = draw(st.integers(1, n))
        if workload == "module":
            graph = scheme.placement.graphs[0]
            module = draw(st.integers(0, graph.num_outputs - 1))
            picked = module_collision_requests(scheme, count, module=module)
        else:
            try:
                picked = majority_collision_requests(scheme, count)
            except ValueError:
                # Pool too small to force majorities at this count; the
                # single-module attack is the fallback concentration.
                picked = module_collision_requests(scheme, count)
        variables = tuple(int(v) for v in np.asarray(picked))
    op = draw(st.sampled_from(("read", "write", "mixed")))
    values = is_write = None
    if op in ("write", "mixed"):
        values = tuple(
            draw(
                st.lists(
                    st.integers(0, 10**6),
                    min_size=len(variables),
                    max_size=len(variables),
                )
            )
        )
    if op == "mixed":
        is_write = tuple(
            draw(
                st.lists(
                    st.booleans(),
                    min_size=len(variables),
                    max_size=len(variables),
                )
            )
        )
    return StepSpec(
        op=op,
        variables=variables,
        values=values,
        is_write=is_write,
        workload=workload,
    )


@st.composite
def case_specs(draw) -> CaseSpec:
    """A full differential-oracle scenario."""
    n, alpha, q, k = draw(st.sampled_from(feasible_configs()))
    curve = draw(st.sampled_from(_CURVES))
    failed = tuple(
        draw(
            st.lists(
                st.integers(0, n - 1),
                max_size=_MAX_FAULTS,
                unique=True,
            )
        )
    )
    steps = tuple(
        draw(
            st.lists(
                step_specs(n, alpha, q, k),
                min_size=1,
                max_size=_MAX_STEPS,
            )
        )
    )
    return CaseSpec(
        n=n,
        alpha=alpha,
        q=q,
        k=k,
        curve=curve,
        failed_nodes=failed,
        steps=steps,
    )

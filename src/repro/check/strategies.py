"""Hypothesis strategies over the protocol stack's real parameter space.

The fuzzer explores the cross product the theorems quantify over: mesh
size ``n``, memory exponent ``alpha``, replication ``q``, hierarchy
depth ``k``, tessellation curve, injected node faults, and per-step
request sets drawn from the uniform generator or the adversarial
generators of :mod:`repro.hmos.adversary` (module-collision and
majority-collision attacks), mixed with read/write/mixed operations.

Everything drawn is materialized into a plain :class:`CaseSpec`, so
shrinking operates on explicit variable lists and failures serialize to
self-contained JSON artifacts.

This module imports :mod:`hypothesis` and must only be imported by the
fuzzer / property tests (the core package works without the extra).
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
from hypothesis import strategies as st

from repro.check.case import CaseSpec, StepSpec
from repro.check.generate import feasible_configs
from repro.check.generate import (  # single source of truth for bounds
    CURVES as _CURVES,
    MAX_FAULTS as _MAX_FAULTS,
    MAX_STEPS as _MAX_STEPS,
    WORKLOADS as _WORKLOADS,
)
from repro.hmos.adversary import (
    majority_collision_requests,
    module_collision_requests,
)
from repro.hmos.scheme import HMOS

__all__ = ["case_specs", "feasible_configs", "step_specs"]


@lru_cache(maxsize=None)
def _scheme_for(n: int, alpha: float, q: int, k: int) -> HMOS:
    """Read-only HMOS used to *materialize* adversarial request sets at
    generation time (the oracle builds its own fresh instances)."""
    return HMOS(n=n, alpha=alpha, q=q, k=k)


@st.composite
def step_specs(draw, n: int, alpha: float, q: int, k: int) -> StepSpec:
    """One memory step against the given configuration."""
    scheme = _scheme_for(n, alpha, q, k)
    num_vars = scheme.num_variables
    workload = draw(st.sampled_from(_WORKLOADS))
    if workload == "uniform":
        variables = tuple(
            draw(
                st.lists(
                    st.integers(0, num_vars - 1),
                    min_size=1,
                    max_size=n,
                    unique=True,
                )
            )
        )
    else:
        count = draw(st.integers(1, n))
        if workload == "module":
            graph = scheme.placement.graphs[0]
            module = draw(st.integers(0, graph.num_outputs - 1))
            picked = module_collision_requests(scheme, count, module=module)
        else:
            try:
                picked = majority_collision_requests(scheme, count)
            except ValueError:
                # Pool too small to force majorities at this count; the
                # single-module attack is the fallback concentration.
                picked = module_collision_requests(scheme, count)
        variables = tuple(int(v) for v in np.asarray(picked))
    op = draw(st.sampled_from(("read", "write", "mixed")))
    values = is_write = None
    if op in ("write", "mixed"):
        values = tuple(
            draw(
                st.lists(
                    st.integers(0, 10**6),
                    min_size=len(variables),
                    max_size=len(variables),
                )
            )
        )
    if op == "mixed":
        is_write = tuple(
            draw(
                st.lists(
                    st.booleans(),
                    min_size=len(variables),
                    max_size=len(variables),
                )
            )
        )
    return StepSpec(
        op=op,
        variables=variables,
        values=values,
        is_write=is_write,
        workload=workload,
    )


@st.composite
def case_specs(draw) -> CaseSpec:
    """A full differential-oracle scenario."""
    n, alpha, q, k = draw(st.sampled_from(feasible_configs()))
    curve = draw(st.sampled_from(_CURVES))
    failed = tuple(
        draw(
            st.lists(
                st.integers(0, n - 1),
                max_size=_MAX_FAULTS,
                unique=True,
            )
        )
    )
    steps = tuple(
        draw(
            st.lists(
                step_specs(n, alpha, q, k),
                min_size=1,
                max_size=_MAX_STEPS,
            )
        )
    )
    return CaseSpec(
        n=n,
        alpha=alpha,
        q=q,
        k=k,
        curve=curve,
        failed_nodes=failed,
        steps=steps,
    )

"""Differential oracle: protocol stack vs ideal PRAM semantics.

Runs one :class:`~repro.check.case.CaseSpec` through three executions of
the same request stream and cross-checks them after every step:

* the access protocol with ``engine="cycle"`` (packet movement simulated
  synchronously),
* the access protocol with ``engine="model"`` (Theorem 2 closed-form
  charging) on an independent HMOS instance with identical parameters,
* a plain NumPy shared-memory image — the ideal PRAM of Definition 2.

The two HMOS instances are deliberately built through *different
construction paths*: the cycle scheme via :meth:`HMOS.cached` (artifact
cache — materialized incidence tables, memoized initial target-set row,
threaded chain tensor) and the model scheme via plain ``HMOS(...)``
(finite-field arithmetic, per-copy incidence validation).  Every fuzz
case therefore differentially certifies the throughput layer's fast
paths against the legacy arithmetic, on top of the engine cross-checks.
Both engines execute the whole request stream through the batched
:meth:`~repro.protocol.access.AccessProtocol.run_steps` executor.

Checked per step:

* **value exactness** — every read/mixed result from both engines equals
  the ideal PRAM value (reads see the newest earlier write, mixed steps
  see pre-step values: the read-compute-write convention);
* **cross-engine agreement** — both engines deliver the *same packets*:
  identical CULLING target sets, iteration diagnostics (including the
  measured page congestion) and charged steps, and identical stage
  metrics ``(stage, t_nodes, delta_in, delta_out)``;
* **stage-metrics invariants** — exactly ``k + 1`` stages numbered
  ``k+1 .. 1``; operating submesh sizes ``t_i`` non-increasing along the
  forward journey (the Eqs. 5-7 regime: every stage operates on a
  smaller tessellation); per-node loads chain (``delta_in`` of stage
  ``i`` equals ``delta_out`` of stage ``i+1``); the first ``delta_in``
  equals the largest per-variable target set (nothing is dropped or
  duplicated before routing);
* **Theorem 3 congestion cap** — post-CULLING page loads within
  ``4 q^k n^{1 - 1/2^i}`` at every level (fault-free cases only; the
  bound degrades gracefully under faults, see DESIGN.md);
* **model-engine mirror** — the model engine's return journey is charged
  exactly the forward total (the paper's reversed-schedule argument).

Fault handling: when a case injects node failures, a step whose request
set contains an unrecoverable variable must raise ``RuntimeError`` from
*both* engines — one engine failing while the other succeeds is itself a
divergence.  Consistently-refused steps are recorded as skipped.

Processor faults and mid-run schedules extend the two-sided rule to
degraded mode: each engine carries its own independently-built
:class:`FaultInjector` (same masks, same schedule), and at every step
boundary the oracle checks that both engines made the *same*
reassignment choices — and that those choices equal the deterministic
round-robin rule replayed by the oracle's own reference injector.  The
injected-load invariant generalizes: the first stage's ``delta_in``
must equal the max per-origin packet count implied by the selected
copies and the reassignment map (which reduces to the largest target
set when no processor is dead).

The ``corrupt_read`` hook exists so the harness can be tested against
itself: it mutates the cycle engine's returned values before comparison,
standing in for a value-corrupting bug anywhere in the stack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.check.case import CaseSpec, StepSpec
from repro.culling.audit import audit_theorem3
from repro.hmos.faults import FaultInjector
from repro.hmos.scheme import HMOS
from repro.protocol.access import AccessProtocol, AccessResult, StepError

__all__ = [
    "DifferentialOracle",
    "DivergenceError",
    "OracleReport",
    "StepOutcome",
    "run_case",
]


class DivergenceError(AssertionError):
    """The protocol stack disagreed with the PRAM oracle (or itself)."""


@dataclass(frozen=True)
class StepOutcome:
    """Verdict for one executed step."""

    index: int
    op: str
    n_requests: int
    skipped: bool  # True when both engines refused (unrecoverable vars)


@dataclass(frozen=True)
class OracleReport:
    """Successful run summary (a failed run raises instead)."""

    case: CaseSpec
    outcomes: tuple[StepOutcome, ...]

    @property
    def steps_checked(self) -> int:
        return sum(1 for o in self.outcomes if not o.skipped)

    @property
    def steps_skipped(self) -> int:
        return sum(1 for o in self.outcomes if o.skipped)


class DifferentialOracle:
    """Executes a case through both engines plus the PRAM reference.

    Parameters
    ----------
    case : CaseSpec
        The scenario to verify.
    corrupt_read : callable, optional
        Testing hook: applied to the cycle engine's returned values
        before comparison (simulates a value-corrupting stack bug).
    """

    def __init__(
        self,
        case: CaseSpec,
        *,
        corrupt_read: Callable[[np.ndarray], np.ndarray] | None = None,
    ):
        self.case = case
        self.corrupt_read = corrupt_read
        # Cache-backed vs arithmetic construction (see module docstring):
        # a fresh CopyMemory per oracle either way, so runs are isolated.
        self._cycle_scheme = HMOS.cached(
            case.n, case.alpha, case.q, case.k, curve=case.curve
        )
        self._model_scheme = HMOS(
            n=case.n, alpha=case.alpha, q=case.q, k=case.k, curve=case.curve
        )
        cycle_faults = self._build_injector(self._cycle_scheme)
        model_faults = self._build_injector(self._model_scheme)
        # A third, engine-independent injector replays the schedule so
        # the oracle can recompute the expected reassignment map itself
        # (agreement must hold three ways, not just cycle-vs-model).
        self._ref_faults = self._build_injector(self._cycle_scheme)
        self._cycle = AccessProtocol(
            self._cycle_scheme, engine="cycle", faults=cycle_faults
        )
        self._model = AccessProtocol(
            self._model_scheme, engine="model", faults=model_faults
        )
        self._reference = np.zeros(self._cycle_scheme.num_variables, dtype=np.int64)

    def _build_injector(self, scheme: HMOS) -> FaultInjector | None:
        case = self.case
        if not (
            case.failed_nodes or case.failed_processors or case.fault_schedule
        ):
            return None
        injector = FaultInjector(scheme, schedule=case.fault_schedule)
        if case.failed_nodes:
            injector.fail_nodes(np.asarray(case.failed_nodes, dtype=np.int64))
        if case.failed_processors:
            injector.fail_processors(
                np.asarray(case.failed_processors, dtype=np.int64)
            )
        return injector

    # -- execution ---------------------------------------------------------

    def run(self) -> OracleReport:
        """Execute every step; raises :class:`DivergenceError` on mismatch.

        Both engines run the whole stream through the batched executor
        (refusals recorded as :class:`StepError`), then the verdicts are
        compared step by step against the advancing PRAM image —
        bit-identical to issuing the steps one at a time, since the
        executor stamps ``start_timestamp + index``.
        """
        for index, step in enumerate(self.case.steps):
            variables = np.asarray(step.variables, dtype=np.int64)
            num_vars = self._cycle_scheme.num_variables
            if variables.size and np.any(
                (variables < 0) | (variables >= num_vars)
            ):
                raise ValueError(
                    f"step {index}: variable id out of range [0, {num_vars})"
                )
        cycle_results = self._cycle.run_steps(
            self.case.steps, start_timestamp=1, on_error="record"
        )
        model_results = self._model.run_steps(
            self.case.steps, start_timestamp=1, on_error="record"
        )
        outcomes = []
        for index, (step, cycle_res, model_res) in enumerate(
            zip(self.case.steps, cycle_results, model_results)
        ):
            # Replay the fault schedule on the reference injector in
            # lockstep with the engines' own step clocks.
            if self._ref_faults is not None:
                self._ref_faults.apply_due_events()
            try:
                outcomes.append(
                    self._judge_step(index, step, cycle_res, model_res)
                )
            finally:
                if self._ref_faults is not None:
                    self._ref_faults.advance_clock()
        return OracleReport(case=self.case, outcomes=tuple(outcomes))

    def _judge_step(self, index, step, cycle_res, model_res) -> StepOutcome:
        variables = np.asarray(step.variables, dtype=np.int64)
        cycle_err = (
            cycle_res.message if isinstance(cycle_res, StepError) else None
        )
        model_err = (
            model_res.message if isinstance(model_res, StepError) else None
        )
        if (cycle_err is None) != (model_err is None):
            raising = "cycle" if cycle_err else "model"
            self._fail(
                index,
                step,
                f"only the {raising} engine refused the step "
                f"({cycle_err or model_err})",
            )
        if cycle_err is not None:
            # Both engines consistently refused (unrecoverable variables
            # under the injected faults): nothing was delivered, nothing
            # changes in the reference either.
            return StepOutcome(
                index=index, op=step.op, n_requests=variables.size, skipped=True
            )

        self._check_values(index, step, variables, cycle_res, model_res)
        self._check_cross_engine(index, step, cycle_res, model_res)
        self._check_reassignments(index, step, variables, cycle_res, model_res)
        for engine, res in (("cycle", cycle_res), ("model", model_res)):
            self._check_stage_invariants(index, step, engine, res)
        # Theorem 3's cap assumes undamaged memory; processor faults
        # leave copy selection untouched, so only memory faults (static
        # or scheduled) suspend the audit.
        memory_faults = self.case.failed_nodes or any(
            e.kind == "module" for e in self.case.fault_schedule
        )
        if not memory_faults:
            try:
                audit_theorem3(
                    self._cycle_scheme, variables, cycle_res.culling.selected
                )
            except AssertionError as exc:
                self._fail(index, step, f"Theorem 3 congestion cap: {exc}")

        # Advance the ideal PRAM image.
        if step.op == "write":
            self._reference[variables] = np.asarray(step.values, dtype=np.int64)
        elif step.op == "mixed":
            is_write = np.asarray(step.is_write, dtype=bool)
            self._reference[variables[is_write]] = np.asarray(
                step.values, dtype=np.int64
            )[is_write]
        return StepOutcome(
            index=index, op=step.op, n_requests=variables.size, skipped=False
        )

    # -- checks ------------------------------------------------------------

    def _fail(self, index: int, step: StepSpec, detail: str):
        raise DivergenceError(
            f"step {index} ({step.op}, {len(step.variables)} requests, "
            f"workload={step.workload}) on {self.case.describe()}: {detail}"
        )

    def _check_values(self, index, step, variables, cycle_res, model_res):
        if step.op == "write":
            return
        expected = self._reference[variables]
        cycle_vals = cycle_res.values
        if self.corrupt_read is not None:
            cycle_vals = self.corrupt_read(np.array(cycle_vals))
        for engine, got in (("cycle", cycle_vals), ("model", model_res.values)):
            if got is None or not np.array_equal(got, expected):
                bad = (
                    np.nonzero(got != expected)[0]
                    if got is not None and got.shape == expected.shape
                    else None
                )
                where = (
                    f" first mismatch at request {bad[0]}: variable "
                    f"{variables[bad[0]]} read {got[bad[0]]}, PRAM holds "
                    f"{expected[bad[0]]}"
                    if bad is not None and bad.size
                    else ""
                )
                self._fail(
                    index,
                    step,
                    f"{engine} engine values diverge from ideal PRAM{where}",
                )

    def _check_cross_engine(self, index, step, cycle_res, model_res):
        c_cull, m_cull = cycle_res.culling, model_res.culling
        if not np.array_equal(c_cull.selected, m_cull.selected):
            self._fail(
                index, step, "engines selected different copy sets (CULLING)"
            )
        if c_cull.iterations != m_cull.iterations:
            self._fail(
                index,
                step,
                "engines disagree on CULLING diagnostics (caps/congestion): "
                f"{c_cull.iterations} vs {m_cull.iterations}",
            )
        if c_cull.charged_steps != m_cull.charged_steps:
            self._fail(
                index,
                step,
                f"CULLING charge differs: {c_cull.charged_steps} vs "
                f"{m_cull.charged_steps}",
            )
        c_struct = [(s.stage, s.t_nodes, s.delta_in, s.delta_out) for s in cycle_res.stages]
        m_struct = [(s.stage, s.t_nodes, s.delta_in, s.delta_out) for s in model_res.stages]
        if c_struct != m_struct:
            self._fail(
                index,
                step,
                f"stage metrics differ between engines: {c_struct} vs {m_struct}",
            )
        forward_total = sum(s.route_steps for s in model_res.stages)
        if model_res.return_steps != forward_total:
            self._fail(
                index,
                step,
                "model engine broke the reversed-schedule mirror: return "
                f"{model_res.return_steps} != forward {forward_total}",
            )

    def _check_reassignments(self, index, step, variables, cycle_res, model_res):
        """Two-sided + reference agreement on degraded-mode choices.

        Both engines must reassign the *same* requests to the *same*
        surviving proxies, and those choices must equal the
        deterministic round-robin rule replayed on the oracle's own
        injector (same masks, same schedule, same clock)."""
        if cycle_res.reassignments != model_res.reassignments:
            self._fail(
                index,
                step,
                "engines disagree on reassignment targets: "
                f"{cycle_res.reassignments} vs {model_res.reassignments}",
            )
        if self._ref_faults is not None and self._ref_faults.failed_processors.size:
            try:
                rmap = self._ref_faults.requester_map(variables.size)
            except RuntimeError:
                self._fail(
                    index,
                    step,
                    "every processor is dead but neither engine refused",
                )
            moved = np.nonzero(
                rmap != np.arange(variables.size, dtype=np.int64)
            )[0]
            expected = tuple((int(i), int(rmap[i])) for i in moved)
        else:
            expected = ()
        if cycle_res.reassignments != expected:
            self._fail(
                index,
                step,
                "reassignment deviates from the deterministic rule: "
                f"got {cycle_res.reassignments}, expected {expected}",
            )

    def _check_stage_invariants(self, index, step, engine, res: AccessResult):
        params = self._cycle_scheme.params
        stages = res.stages
        expected_numbers = list(range(params.k + 1, 0, -1))
        if [s.stage for s in stages] != expected_numbers:
            self._fail(
                index,
                step,
                f"{engine} engine stage numbering {[s.stage for s in stages]} "
                f"!= {expected_numbers}",
            )
        t_nodes = [s.t_nodes for s in stages]
        if any(t_nodes[i] < t_nodes[i + 1] for i in range(len(t_nodes) - 1)):
            self._fail(
                index,
                step,
                f"{engine} engine submesh sizes not non-increasing: {t_nodes}",
            )
        for i in range(len(stages) - 1):
            if stages[i + 1].delta_in != stages[i].delta_out:
                self._fail(
                    index,
                    step,
                    f"{engine} engine per-node loads do not chain at stage "
                    f"{stages[i + 1].stage}: delta_in {stages[i + 1].delta_in} "
                    f"!= previous delta_out {stages[i].delta_out}",
                )
        # Injected load: the max per-origin packet count implied by the
        # selected copies and the reassignment map.  Fault-free this is
        # the largest target set (each variable has its own origin);
        # under processor faults proxies aggregate several variables.
        rows, _ = np.nonzero(res.culling.selected)
        requesters = np.arange(res.culling.selected.shape[0], dtype=np.int64)
        for position, proxy in res.reassignments:
            requesters[position] = proxy
        origins = requesters[rows]
        expected_load = (
            int(np.bincount(origins, minlength=params.n).max())
            if origins.size
            else 0
        )
        if stages and stages[0].delta_in != expected_load:
            self._fail(
                index,
                step,
                f"{engine} engine injected load {stages[0].delta_in} != max "
                f"per-origin packet count {expected_load} (packets dropped, "
                f"duplicated, or mis-reassigned)",
            )
        if any(s.sort_steps < 0 or s.route_steps < 0 for s in stages) or (
            res.return_steps < 0
        ):
            self._fail(index, step, f"{engine} engine charged negative steps")


def run_case(
    case: CaseSpec,
    *,
    corrupt_read: Callable[[np.ndarray], np.ndarray] | None = None,
) -> OracleReport:
    """Convenience wrapper: build the oracle and run the case."""
    return DifferentialOracle(case, corrupt_read=corrupt_read).run()

"""Hypothesis-free case generation for the parallel fuzz path.

The default campaign (:func:`repro.check.fuzz.run_fuzz`) drives the
Hypothesis engine, whose generation and bookkeeping dominate wall-clock
on these sub-100ms cases.  The ``--workers`` sweep path instead draws
:class:`~repro.check.case.CaseSpec` instances directly from a seeded
NumPy generator over the *same* parameter space and bounds — mesh sizes,
alpha/q/k grid, curves, fault budget, workload mix, step shapes — so the
distributions match the Hypothesis strategies in
:mod:`repro.check.strategies` while costing microseconds per case.
``random_cases(seed, count)`` is deterministic, and pickles to plain
dicts for process-pool shards.

This module must stay importable without the ``hypothesis`` extra; the
strategies module re-exports :func:`feasible_configs` from here.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.check.case import CaseSpec, StepSpec
from repro.hmos.adversary import (
    doomed_processor_requests,
    majority_collision_requests,
    module_collision_requests,
)
from repro.hmos.faults import EVENT_KINDS, FaultEvent
from repro.hmos.params import HMOSParams
from repro.hmos.scheme import HMOS

__all__ = ["PROFILES", "feasible_configs", "random_case", "random_cases"]

#: Bounds keeping one fuzz case under ~100 ms: small meshes, capped
#: memory (the invariants are size-uniform; the theorems' asymptotics
#: are covered by the E4/E8 benchmarks instead).
N_CHOICES = (16, 64)
ALPHA_CHOICES = (1.1, 1.25, 1.5, 2.0)
Q_CHOICES = (3, 4, 5)
K_CHOICES = (1, 2, 3)
MAX_VARIABLES = 20_000
MAX_STEPS = 4
MAX_FAULTS = 3
MAX_SCHEDULE_EVENTS = 2
CURVES = ("morton", "hilbert")
WORKLOADS = ("uniform", "module", "majority", "doomed")

#: Generator profiles: ``default`` mixes fault-free and faulty cases;
#: ``fault-heavy`` guarantees every case carries static processor
#: faults AND a mid-run fault schedule (plus an elevated memory-fault
#: budget) — the CI slice exercising the degraded-mode machinery on
#: every single case.
PROFILES = ("default", "fault-heavy")


@lru_cache(maxsize=1)
def feasible_configs() -> tuple[tuple[int, float, int, int], ...]:
    """All ``(n, alpha, q, k)`` combinations the HMOS can instantiate
    within the fuzz budget, smallest first (shrinking prefers the front
    of the list)."""
    out = []
    for n in N_CHOICES:
        for alpha in ALPHA_CHOICES:
            for q in Q_CHOICES:
                for k in K_CHOICES:
                    try:
                        params = HMOSParams(n=n, alpha=alpha, q=q, k=k)
                    except ValueError:
                        continue
                    if params.num_variables <= MAX_VARIABLES:
                        out.append((n, alpha, q, k))
    out.sort(key=lambda cfg: (cfg[0], HMOSParams(*cfg).num_variables, cfg[3]))
    return tuple(out)


def _scheme_for(n: int, alpha: float, q: int, k: int) -> HMOS:
    """Read-only HMOS used to materialize adversarial request sets at
    generation time (the oracle builds its own fresh instances)."""
    return HMOS.cached(n, alpha, q, k)


def _request_count(rng: np.random.Generator, n: int) -> int:
    """Log-uniform request-set size in ``[1, n]``.

    Standard fuzz sizing — mostly small cases (fast to execute, easy to
    shrink) with a tail reaching the full-load boundary — which also
    matches the effective size distribution of the Hypothesis path, so
    campaign wall-clocks stay comparable per case.
    """
    return int(np.exp(rng.uniform(0.0, np.log(n + 1))))


def _random_step(
    rng: np.random.Generator,
    n: int,
    alpha: float,
    q: int,
    k: int,
    doomed: tuple[int, ...] = (),
) -> StepSpec:
    """One memory step against the given configuration.

    ``doomed`` carries the processor ranks the case's fault state will
    kill (static + scheduled), so the ``doomed`` workload can aim its
    concentration at exactly the requests that will be reassigned.
    """
    scheme = _scheme_for(n, alpha, q, k)
    num_vars = scheme.num_variables
    workload = WORKLOADS[rng.integers(len(WORKLOADS))]
    if workload == "doomed" and not doomed:
        workload = "module"  # nothing to doom; fall back to the module attack
    if workload == "uniform":
        count = _request_count(rng, n)
        variables = tuple(
            int(v) for v in rng.choice(num_vars, size=count, replace=False)
        )
    else:
        count = _request_count(rng, n)
        if workload == "doomed":
            module = int(rng.integers(scheme.placement.graphs[0].num_outputs))
            picked = doomed_processor_requests(
                scheme, count, doomed=doomed, module=module
            )
        elif workload == "module":
            graph = scheme.placement.graphs[0]
            module = int(rng.integers(graph.num_outputs))
            picked = module_collision_requests(scheme, count, module=module)
        else:
            try:
                picked = majority_collision_requests(scheme, count)
            except ValueError:
                # Pool too small to force majorities at this count; the
                # single-module attack is the fallback concentration.
                picked = module_collision_requests(scheme, count)
        variables = tuple(int(v) for v in np.asarray(picked))
    op = ("read", "write", "mixed")[rng.integers(3)]
    values = is_write = None
    if op in ("write", "mixed"):
        values = tuple(
            int(v) for v in rng.integers(0, 10**6 + 1, size=len(variables))
        )
    if op == "mixed":
        is_write = tuple(bool(b) for b in rng.integers(0, 2, size=len(variables)))
    return StepSpec(
        op=op,
        variables=variables,
        values=values,
        is_write=is_write,
        workload=workload,
    )


def _random_schedule(
    rng: np.random.Generator, n: int, n_steps: int, *, minimum: int
) -> tuple[FaultEvent, ...]:
    """0..MAX_SCHEDULE_EVENTS mid-run fault events.

    Event steps are drawn from ``[0, n_steps]`` *inclusive* — step 0
    (death before anything runs) and ``n_steps`` (death scheduled past
    the end of the stream, which must never fire) are both edge cases
    the oracle is expected to handle.
    """
    n_events = int(rng.integers(minimum, MAX_SCHEDULE_EVENTS + 1))
    events = []
    for _ in range(n_events):
        step = int(rng.integers(0, n_steps + 1))
        kind = EVENT_KINDS[rng.integers(len(EVENT_KINDS))]
        size = int(rng.integers(1, 3))
        nodes = tuple(
            int(x) for x in sorted(rng.choice(n, size=size, replace=False))
        )
        events.append(FaultEvent(step=step, kind=kind, nodes=nodes))
    return tuple(events)


def random_case(rng: np.random.Generator, profile: str = "default") -> CaseSpec:
    """A full differential-oracle scenario drawn from ``rng``."""
    if profile not in PROFILES:
        raise ValueError(f"unknown profile {profile!r}; choose from {PROFILES}")
    heavy = profile == "fault-heavy"
    configs = feasible_configs()
    n, alpha, q, k = configs[rng.integers(len(configs))]
    curve = CURVES[rng.integers(len(CURVES))]
    n_faults = int(rng.integers(1 if heavy else 0, MAX_FAULTS + 1))
    failed = tuple(
        int(x) for x in sorted(rng.choice(n, size=n_faults, replace=False))
    )
    n_procs = int(rng.integers(1 if heavy else 0, MAX_FAULTS + 1))
    failed_procs = tuple(
        int(x) for x in sorted(rng.choice(n, size=n_procs, replace=False))
    )
    n_steps = int(rng.integers(1, MAX_STEPS + 1))
    schedule = _random_schedule(rng, n, n_steps, minimum=1 if heavy else 0)
    doomed = tuple(
        sorted(
            set(failed_procs).union(
                node
                for e in schedule
                if e.kind == "processor"
                for node in e.nodes
            )
        )
    )
    steps = tuple(
        _random_step(rng, n, alpha, q, k, doomed=doomed) for _ in range(n_steps)
    )
    return CaseSpec(
        n=n,
        alpha=alpha,
        q=q,
        k=k,
        curve=curve,
        failed_nodes=failed,
        failed_processors=failed_procs,
        fault_schedule=schedule,
        steps=steps,
    )


def random_cases(
    seed: int, count: int, profile: str = "default"
) -> list[CaseSpec]:
    """``count`` cases, deterministic in ``(seed, profile)`` (independent
    of worker count — the stream is drawn up front, then sharded)."""
    rng = np.random.default_rng(seed)
    return [random_case(rng, profile) for _ in range(count)]

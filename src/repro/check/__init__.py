"""Differential verification of the protocol stack against PRAM semantics.

Three pillars (see DESIGN.md, "Differential verification harness"):

* :mod:`repro.check.oracle` — runs one request stream through the cycle
  engine, the Theorem 2 cost model, and an ideal PRAM memory image, and
  cross-checks values, delivered packets, congestion, and stage-metric
  invariants after every step;
* :mod:`repro.check.strategies` + :mod:`repro.check.fuzz` — a
  deterministic Hypothesis fuzzer over the real parameter space
  (``repro check fuzz`` on the command line) that shrinks any divergence
  to a minimized JSON artifact under ``tests/data/repros/``;
* ``tests/property/`` — the per-layer property suite that runs under
  tier-1.

Importing this package does not require :mod:`hypothesis`; only the
fuzzer and the strategies module do.
"""

from repro.check.case import CaseSpec, StepSpec, load_artifact, save_artifact
from repro.check.oracle import (
    DifferentialOracle,
    DivergenceError,
    OracleReport,
    StepOutcome,
    run_case,
)

__all__ = [
    "CaseSpec",
    "StepSpec",
    "DifferentialOracle",
    "DivergenceError",
    "OracleReport",
    "StepOutcome",
    "load_artifact",
    "run_case",
    "save_artifact",
]

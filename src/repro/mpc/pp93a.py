"""The [PP93a] scheme: explicit BIBD memory organization on the MPC.

Variables are the inputs of a ``(q^d, q)``-BIBD (lines of AG(d, q)),
modules its outputs; each variable keeps q copies, one per incident
point, and an access touches a *majority* ``floor(q/2) + 1`` of them.
Copy selection is the single-level instance of the paper's CULLING:
mark at most ``cap`` selected copies per module, then extract a minimal
majority preferring marked copies.  For a request set of size R on m
modules this bounds the post-selection module congestion by
``2 cap`` with ``cap ~ 2 q R / sqrt(R m)`` — the ``O(sqrt(n))``
worst-case access of [PP93a] when ``R = n`` and ``m = Theta(n)``.

This is exactly what the reproduced paper generalizes: the HMOS is the
k-level iterated version of this construction, traded against mesh
routing costs.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.bibd.subgraph import BalancedSubgraph
from repro.hmos.copytree import extract_min_target_set
from repro.mpc.machine import AccessBatchCost, MPCMachine
from repro.util.validate import check_positive

__all__ = ["PP93aScheme", "PP93aAccessResult"]


@dataclass(frozen=True)
class PP93aAccessResult:
    """Outcome of one access step under the PP93a scheme."""

    cost: AccessBatchCost
    selected_per_variable: np.ndarray  # (N, q) bool
    cap: int


class PP93aScheme:
    """Single-level BIBD scheme with majority access on an MPC.

    Parameters
    ----------
    q : int
        Prime power >= 3 (majority needs q >= 3).
    d : int
        Dimension; the MPC gets ``q^d`` modules.
    num_variables : int, optional
        Defaults to the full design's input count (memory ~ modules^2 /
        q^3, the [PP93a] regime).
    """

    def __init__(self, q: int, d: int, num_variables: int | None = None):
        check_positive("q", q, minimum=3)
        full_graph = BalancedSubgraph(q, d, 1)  # probe for sizes
        max_vars = full_graph.design.num_inputs
        if num_variables is None:
            num_variables = max_vars
        self.graph = BalancedSubgraph(q, d, num_variables)
        self.q = self.graph.q
        self.num_variables = int(num_variables)
        self.num_modules = self.graph.num_outputs
        self.machine = MPCMachine(self.num_modules)
        self.majority = q // 2 + 1

    def copy_modules(self, variables) -> np.ndarray:
        """Module of each of the q copies; shape ``(N, q)``."""
        variables = np.asarray(variables, dtype=np.int64)
        return self.graph.neighbors(variables)

    def select_copies(self, variables) -> PP93aAccessResult:
        """Threshold-select a majority per variable, bounding congestion.

        Single-level CULLING: cap marked copies per module at
        ``ceil(2 q N / sqrt(N m))``, then extract minimal majorities
        preferring marked copies.
        """
        variables = np.asarray(variables, dtype=np.int64)
        if np.unique(variables).size != variables.size:
            raise ValueError("request set must contain distinct variables")
        N = variables.size
        modules = self.copy_modules(variables)  # (N, q)
        cap = max(1, math.ceil(2 * self.q * N / math.sqrt(max(N * self.num_modules, 1))))
        # Mark up to `cap` copies per module, in deterministic order.
        order = np.lexsort(
            (np.tile(np.arange(self.q), N), np.repeat(np.arange(N), self.q),
             modules.reshape(-1))
        )
        flat_modules = modules.reshape(-1)[order]
        new_group = np.ones(flat_modules.size, dtype=bool)
        new_group[1:] = flat_modules[1:] != flat_modules[:-1]
        run_start = np.maximum.accumulate(
            np.where(new_group, np.arange(flat_modules.size), 0)
        )
        rank = np.arange(flat_modules.size) - run_start
        marked_flat = np.zeros(N * self.q, dtype=bool)
        marked_flat[order[rank < cap]] = True
        marked = marked_flat.reshape(N, self.q)
        allowed = np.ones((N, self.q), dtype=bool)
        feasible, chosen, _ = extract_min_target_set(
            marked, allowed, self.q, k=1, level=1
        )
        assert feasible.all()
        touched = modules[chosen]
        cost = self.machine.access(touched)
        return PP93aAccessResult(cost=cost, selected_per_variable=chosen, cap=cap)

    def congestion_bound(self, num_requests: int) -> float:
        """The [PP93a]-style bound on post-selection module congestion."""
        cap = 2 * self.q * num_requests / math.sqrt(num_requests * self.num_modules)
        return 2 * max(cap, 1.0) + self.q

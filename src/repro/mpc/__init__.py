"""The Module Parallel Computer (MPC) and the PP93a scheme.

The MPC is the idealized machine of [MV84, UW87, PP93a]: ``m`` memory
modules behind a *complete* interconnect, so the cost of satisfying an
access batch is purely its **module congestion** — the maximum number of
requests any single module must serve (one per time unit).  The paper
under reproduction lifts [PP93a]'s BIBD scheme from the MPC to the mesh;
this subpackage implements the original single-level scheme so the
hierarchy's contribution can be isolated (ablation experiment E13):

* :class:`MPCMachine` — congestion-cost accounting for access batches;
* :class:`PP93aScheme` — the explicit (q^d, q)-BIBD memory organization
  of [PP93a] with majority access and threshold-based copy selection,
  achieving O(sqrt(n)) worst-case module congestion for memory ~ n^2.
"""

from repro.mpc.machine import AccessBatchCost, MPCMachine
from repro.mpc.pp93a import PP93aScheme

__all__ = ["AccessBatchCost", "MPCMachine", "PP93aScheme"]

"""The Module Parallel Computer: congestion-cost accounting.

An MPC step lets every processor send one request into the complete
network and every module answer one request.  A batch of accesses
addressed to modules therefore takes ``max module congestion`` steps —
routing is free, contention is everything.  (This is exactly the aspect
the mesh simulation must add routing costs on top of, which is why the
paper calls the MPC unrealistic.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.validate import check_positive

__all__ = ["AccessBatchCost", "MPCMachine"]


@dataclass(frozen=True)
class AccessBatchCost:
    """Cost decomposition of one MPC access batch."""

    requests: int
    packets: int
    max_module_load: int
    mean_module_load: float

    @property
    def steps(self) -> int:
        """MPC time units to satisfy the batch (= max congestion)."""
        return self.max_module_load


class MPCMachine:
    """An m-module MPC with cumulative congestion accounting."""

    def __init__(self, num_modules: int):
        check_positive("num_modules", num_modules)
        self.num_modules = int(num_modules)
        self.total_steps = 0
        self.batches = 0

    def access(self, module_ids: np.ndarray) -> AccessBatchCost:
        """Account one batch of module accesses (one id per packet)."""
        module_ids = np.asarray(module_ids, dtype=np.int64)
        if module_ids.ndim != 1:
            raise ValueError("module_ids must be 1-D (one entry per packet)")
        if module_ids.size == 0:
            return AccessBatchCost(0, 0, 0, 0.0)
        if np.any((module_ids < 0) | (module_ids >= self.num_modules)):
            raise ValueError("module id out of range")
        loads = np.bincount(module_ids, minlength=self.num_modules)
        cost = AccessBatchCost(
            requests=int(module_ids.size),
            packets=int(module_ids.size),
            max_module_load=int(loads.max()),
            mean_module_load=float(loads[loads > 0].mean()),
        )
        self.total_steps += cost.steps
        self.batches += 1
        return cost

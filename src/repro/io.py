"""Configuration and result serialization (JSON).

Experiments must be exactly reproducible: a scheme is fully determined
by ``(n, alpha, q, k, curve)`` plus the library version, and an access
result's accounting is a plain tree of numbers.  These helpers
round-trip both through JSON so runs can be archived and re-created.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Any

from repro.hmos.scheme import HMOS
from repro.protocol.access import AccessResult
from repro.util.fsio import write_text_atomic

__all__ = [
    "ACCESS_RESULT_FORMAT",
    "AccessRecord",
    "CullingIterationRecord",
    "StageRecord",
    "scheme_to_config",
    "scheme_from_config",
    "save_config",
    "load_config",
    "access_result_to_dict",
    "access_result_from_dict",
]

#: Format stamp of the flattened access-result archive schema.
ACCESS_RESULT_FORMAT = "repro.access/1"


def scheme_to_config(scheme: HMOS) -> dict[str, Any]:
    """The complete recipe for rebuilding ``scheme``."""
    import repro

    p = scheme.params
    return {
        "format": "repro.hmos/1",
        "version": repro.__version__,
        "n": p.n,
        "alpha": p.alpha,
        "q": p.q,
        "k": p.k,
        "curve": scheme.mesh.curve,
        # Derived values, stored for integrity checking on load:
        "derived": {
            "d": list(p.d),
            "m": list(p.m),
            "num_variables": p.num_variables,
            "redundancy": p.redundancy,
        },
    }


def scheme_from_config(config: dict[str, Any]) -> HMOS:
    """Rebuild a scheme; verifies the derived structure still matches.

    A mismatch means the construction changed between versions — the
    archived results would not be comparable, so loading fails loudly.
    """
    if config.get("format") != "repro.hmos/1":
        raise ValueError(f"unsupported config format {config.get('format')!r}")
    scheme = HMOS(
        n=config["n"],
        alpha=config["alpha"],
        q=config["q"],
        k=config["k"],
        curve=config.get("curve", "morton"),
    )
    derived = config.get("derived")
    if derived is not None:
        p = scheme.params
        current = {
            "d": list(p.d),
            "m": list(p.m),
            "num_variables": p.num_variables,
            "redundancy": p.redundancy,
        }
        if current != derived:
            raise ValueError(
                "archived config's derived structure does not match this "
                f"version's construction: {derived} != {current}"
            )
    return scheme


def save_config(scheme: HMOS, path: str | Path) -> None:
    """Write the scheme's JSON recipe to ``path`` (atomically).

    The write goes through temp-file + ``os.replace`` — the same
    contract as the artifact cache — so a crash mid-write can never
    leave a truncated, unparseable recipe behind.
    """
    write_text_atomic(path, json.dumps(scheme_to_config(scheme), indent=2) + "\n")


def load_config(path: str | Path) -> HMOS:
    """Rebuild a scheme from a JSON recipe file."""
    return scheme_from_config(json.loads(Path(path).read_text()))


def access_result_to_dict(result: AccessResult) -> dict[str, Any]:
    """Flatten one step's accounting for logging/archival.

    The payload is stamped ``repro.access/1`` and round-trips through
    :func:`access_result_from_dict`.
    """
    return {
        "format": ACCESS_RESULT_FORMAT,
        "op": result.op,
        "requests": int(result.variables.size),
        "total_steps": float(result.total_steps),
        "culling_steps": float(result.culling.charged_steps),
        "return_steps": float(result.return_steps),
        "selected_copies": int(result.culling.total_selected),
        "reassigned": len(result.reassignments),
        "stages": [
            {
                "stage": s.stage,
                "t_nodes": s.t_nodes,
                "delta_in": s.delta_in,
                "delta_out": s.delta_out,
                "sort_steps": float(s.sort_steps),
                "route_steps": float(s.route_steps),
            }
            for s in result.stages
        ],
        "culling_iterations": [
            {
                "level": it.level,
                "cap": it.cap,
                "marked": it.marked,
                "max_page_load": it.max_page_load,
            }
            for it in result.culling.iterations
        ],
    }


@dataclass(frozen=True)
class StageRecord:
    """Archived accounting of one routing stage (mirrors ``StageMetrics``)."""

    stage: int
    t_nodes: int
    delta_in: int
    delta_out: int
    sort_steps: float
    route_steps: float


@dataclass(frozen=True)
class CullingIterationRecord:
    """Archived per-level CULLING diagnostics."""

    level: int
    cap: int
    marked: int
    max_page_load: int


@dataclass(frozen=True)
class AccessRecord:
    """A loaded ``repro.access/1`` archive entry.

    The accounting view of one :class:`AccessResult` — everything
    :func:`access_result_to_dict` flattens, minus the live arrays —
    reconstructed so archived runs can be analyzed without replaying
    them.  ``to_dict`` reproduces the archived payload bit-identically.
    """

    op: str
    requests: int
    total_steps: float
    culling_steps: float
    return_steps: float
    selected_copies: int
    stages: tuple[StageRecord, ...]
    culling_iterations: tuple[CullingIterationRecord, ...]
    #: Requests served by a proxy because their processor was dead
    #: (0 in archives written before the degraded-mode extension).
    reassigned: int = 0

    @property
    def protocol_steps(self) -> float:
        """Forward + return routing cost (matches ``AccessResult``)."""
        return (
            sum(s.sort_steps + s.route_steps for s in self.stages)
            + self.return_steps
        )

    def to_dict(self) -> dict[str, Any]:
        return {
            "format": ACCESS_RESULT_FORMAT,
            "op": self.op,
            "requests": self.requests,
            "total_steps": self.total_steps,
            "culling_steps": self.culling_steps,
            "return_steps": self.return_steps,
            "selected_copies": self.selected_copies,
            "reassigned": self.reassigned,
            "stages": [asdict(s) for s in self.stages],
            "culling_iterations": [asdict(it) for it in self.culling_iterations],
        }


def access_result_from_dict(data: dict[str, Any]) -> AccessRecord:
    """Load an archived access result; validates the format stamp.

    Raises ``ValueError`` on a missing/unsupported stamp or a payload
    that does not match the ``repro.access/1`` schema — an archive
    written by a different construction must fail loudly, exactly like
    :func:`scheme_from_config`.
    """
    if data.get("format") != ACCESS_RESULT_FORMAT:
        raise ValueError(
            f"unsupported access-result format {data.get('format')!r} "
            f"(expected {ACCESS_RESULT_FORMAT!r})"
        )
    try:
        return AccessRecord(
            op=str(data["op"]),
            requests=int(data["requests"]),
            total_steps=float(data["total_steps"]),
            culling_steps=float(data["culling_steps"]),
            return_steps=float(data["return_steps"]),
            selected_copies=int(data["selected_copies"]),
            reassigned=int(data.get("reassigned", 0)),
            stages=tuple(
                StageRecord(
                    stage=int(s["stage"]),
                    t_nodes=int(s["t_nodes"]),
                    delta_in=int(s["delta_in"]),
                    delta_out=int(s["delta_out"]),
                    sort_steps=float(s["sort_steps"]),
                    route_steps=float(s["route_steps"]),
                )
                for s in data["stages"]
            ),
            culling_iterations=tuple(
                CullingIterationRecord(
                    level=int(it["level"]),
                    cap=int(it["cap"]),
                    marked=int(it["marked"]),
                    max_page_load=int(it["max_page_load"]),
                )
                for it in data["culling_iterations"]
            ),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(
            f"malformed {ACCESS_RESULT_FORMAT} payload: {exc!r}"
        ) from exc

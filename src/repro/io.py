"""Configuration and result serialization (JSON).

Experiments must be exactly reproducible: a scheme is fully determined
by ``(n, alpha, q, k, curve)`` plus the library version, and an access
result's accounting is a plain tree of numbers.  These helpers
round-trip both through JSON so runs can be archived and re-created.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any

from repro.hmos.scheme import HMOS
from repro.protocol.access import AccessResult

__all__ = [
    "scheme_to_config",
    "scheme_from_config",
    "save_config",
    "load_config",
    "access_result_to_dict",
]


def scheme_to_config(scheme: HMOS) -> dict[str, Any]:
    """The complete recipe for rebuilding ``scheme``."""
    import repro

    p = scheme.params
    return {
        "format": "repro.hmos/1",
        "version": repro.__version__,
        "n": p.n,
        "alpha": p.alpha,
        "q": p.q,
        "k": p.k,
        "curve": scheme.mesh.curve,
        # Derived values, stored for integrity checking on load:
        "derived": {
            "d": list(p.d),
            "m": list(p.m),
            "num_variables": p.num_variables,
            "redundancy": p.redundancy,
        },
    }


def scheme_from_config(config: dict[str, Any]) -> HMOS:
    """Rebuild a scheme; verifies the derived structure still matches.

    A mismatch means the construction changed between versions — the
    archived results would not be comparable, so loading fails loudly.
    """
    if config.get("format") != "repro.hmos/1":
        raise ValueError(f"unsupported config format {config.get('format')!r}")
    scheme = HMOS(
        n=config["n"],
        alpha=config["alpha"],
        q=config["q"],
        k=config["k"],
        curve=config.get("curve", "morton"),
    )
    derived = config.get("derived")
    if derived is not None:
        p = scheme.params
        current = {
            "d": list(p.d),
            "m": list(p.m),
            "num_variables": p.num_variables,
            "redundancy": p.redundancy,
        }
        if current != derived:
            raise ValueError(
                "archived config's derived structure does not match this "
                f"version's construction: {derived} != {current}"
            )
    return scheme


def save_config(scheme: HMOS, path: str | Path) -> None:
    """Write the scheme's JSON recipe to ``path``."""
    Path(path).write_text(json.dumps(scheme_to_config(scheme), indent=2) + "\n")


def load_config(path: str | Path) -> HMOS:
    """Rebuild a scheme from a JSON recipe file."""
    return scheme_from_config(json.loads(Path(path).read_text()))


def access_result_to_dict(result: AccessResult) -> dict[str, Any]:
    """Flatten one step's accounting for logging/archival."""
    return {
        "op": result.op,
        "requests": int(result.variables.size),
        "total_steps": float(result.total_steps),
        "culling_steps": float(result.culling.charged_steps),
        "return_steps": float(result.return_steps),
        "selected_copies": int(result.culling.total_selected),
        "stages": [
            {
                "stage": s.stage,
                "t_nodes": s.t_nodes,
                "delta_in": s.delta_in,
                "delta_out": s.delta_out,
                "sort_steps": float(s.sort_steps),
                "route_steps": float(s.route_steps),
            }
            for s in result.stages
        ],
        "culling_iterations": [
            {
                "level": it.level,
                "cap": it.cap,
                "marked": it.marked,
                "max_page_load": it.max_page_load,
            }
            for it in result.culling.iterations
        ],
    }

"""Exact integer arithmetic helpers.

All routines operate on Python ints (arbitrary precision) or NumPy integer
arrays and never round through floating point, because the results are used
as array indices, field-element encodings and submesh boundaries where an
off-by-one silently corrupts a memory map.
"""

from __future__ import annotations

import math
from collections.abc import Sequence

import numpy as np

__all__ = [
    "ceil_div",
    "ceil_log",
    "digits_from_int",
    "int_from_digits",
    "is_perfect_square",
    "is_power_of",
    "isqrt_exact",
]


def ceil_div(a: int, b: int) -> int:
    """Return ``ceil(a / b)`` for integers without floating point.

    ``b`` must be positive; ``a`` may be any integer.
    """
    if b <= 0:
        raise ValueError(f"divisor must be positive, got {b}")
    return -((-a) // b)


def ceil_log(value: int, base: int) -> int:
    """Return the smallest ``e >= 0`` with ``base**e >= value``.

    Exact (no ``math.log`` rounding hazards).  ``base`` must be >= 2 and
    ``value`` >= 1.
    """
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if value < 1:
        raise ValueError(f"value must be >= 1, got {value}")
    e = 0
    p = 1
    while p < value:
        p *= base
        e += 1
    return e


def is_power_of(value: int, base: int) -> bool:
    """Return True iff ``value == base**e`` for some integer ``e >= 0``."""
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if value < 1:
        return False
    while value % base == 0:
        value //= base
    return value == 1


def isqrt_exact(value: int) -> int:
    """Return the exact integer square root of a perfect square.

    Raises ``ValueError`` if ``value`` is not a perfect square, which is the
    correct failure mode when a caller expects a square mesh.
    """
    if value < 0:
        raise ValueError(f"value must be non-negative, got {value}")
    root = math.isqrt(value)
    if root * root != value:
        raise ValueError(f"{value} is not a perfect square")
    return root


def is_perfect_square(value: int) -> bool:
    """Return True iff ``value`` is a perfect square (0 counts)."""
    if value < 0:
        return False
    root = math.isqrt(value)
    return root * root == value


def digits_from_int(value: int | np.ndarray, base: int, width: int) -> np.ndarray:
    """Return base-``base`` digits of ``value``, least significant first.

    Accepts a scalar or an integer array; the digit axis is appended last,
    so the result has shape ``(*value.shape, width)``.  Values must fit in
    ``width`` digits.
    """
    arr = np.asarray(value, dtype=np.int64)
    if np.any(arr < 0):
        raise ValueError("digits_from_int requires non-negative values")
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    out = np.empty(arr.shape + (width,), dtype=np.int64)
    rest = arr.copy()
    for pos in range(width):
        out[..., pos] = rest % base
        rest //= base
    if np.any(rest != 0):
        raise ValueError(f"value does not fit in {width} base-{base} digits")
    return out


def int_from_digits(digits: Sequence[int] | np.ndarray, base: int) -> np.ndarray:
    """Inverse of :func:`digits_from_int` (digit axis last, LSD first)."""
    arr = np.asarray(digits, dtype=np.int64)
    if base < 2:
        raise ValueError(f"base must be >= 2, got {base}")
    if np.any((arr < 0) | (arr >= base)):
        raise ValueError(f"digits out of range for base {base}")
    weights = base ** np.arange(arr.shape[-1], dtype=np.int64)
    return (arr * weights).sum(axis=-1)

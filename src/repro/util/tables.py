"""Plain-text table rendering for experiment reports.

Benchmarks and examples print the same rows a paper table would contain;
this formatter keeps them aligned and diff-friendly so EXPERIMENTS.md can
embed the output verbatim.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

__all__ = ["format_table"]


def _render_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1e5 or abs(value) < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[Any]],
    *,
    title: str | None = None,
) -> str:
    """Render ``rows`` under ``headers`` as an aligned ASCII table."""
    str_rows = [[_render_cell(cell) for cell in row] for row in rows]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells, expected {len(headers)}: {row}"
            )
    widths = [len(h) for h in headers]
    for row in str_rows:
        for idx, cell in enumerate(row):
            widths[idx] = max(widths[idx], len(cell))

    def fmt_row(cells: Sequence[str]) -> str:
        return "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(row) for row in str_rows)
    return "\n".join(lines)

"""Small argument-validation helpers with uniform error messages."""

from __future__ import annotations

from typing import Any

__all__ = ["check_index", "check_positive", "check_type"]


def check_positive(name: str, value: int, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an int >= ``minimum`` and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if value < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {value}")
    return value


def check_index(name: str, value: int, size: int) -> int:
    """Validate that ``value`` is a valid index into a container of ``size``."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    if not 0 <= value < size:
        raise IndexError(f"{name} must be in [0, {size}), got {value}")
    return value


def check_type(name: str, value: Any, expected: type) -> Any:
    """Validate that ``value`` is an instance of ``expected`` and return it."""
    if not isinstance(value, expected):
        raise TypeError(
            f"{name} must be {expected.__name__}, got {type(value).__name__}"
        )
    return value

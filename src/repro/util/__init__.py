"""Shared low-level utilities: integer math, validation, table rendering.

These helpers are deliberately dependency-light; everything above them in
the stack (finite fields, designs, the mesh machine) builds on exact integer
arithmetic, so the primitives here avoid floating point wherever a result
feeds back into an index computation.
"""

from repro.util.intmath import (
    ceil_div,
    ceil_log,
    digits_from_int,
    int_from_digits,
    is_perfect_square,
    is_power_of,
    isqrt_exact,
)
from repro.util.fsio import write_text_atomic
from repro.util.grouping import rank_within_groups
from repro.util.tables import format_table
from repro.util.validate import check_index, check_positive, check_type

__all__ = [
    "ceil_div",
    "ceil_log",
    "digits_from_int",
    "int_from_digits",
    "is_perfect_square",
    "is_power_of",
    "isqrt_exact",
    "format_table",
    "rank_within_groups",
    "check_index",
    "check_positive",
    "check_type",
    "write_text_atomic",
]

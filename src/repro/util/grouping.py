"""Stable rank of each element within its group.

The access protocol's sort-and-rank phases and Section 2's staged
routing both reduce to this primitive: given each packet's group id
(destination submesh / page key), assign ranks 0, 1, ... within every
group, stably in input order — the outcome of the on-mesh sort-and-rank
whose movement cost is charged separately.
"""

from __future__ import annotations

import numpy as np

__all__ = ["rank_within_groups"]


def rank_within_groups(group_ids: np.ndarray) -> np.ndarray:
    """Stable 0-based rank of each element among equals.

    >>> rank_within_groups(np.array([5, 3, 5, 5, 3]))
    array([0, 0, 1, 2, 1])
    """
    group_ids = np.asarray(group_ids)
    order = np.argsort(group_ids, kind="stable")
    sorted_groups = group_ids[order]
    new_group = np.ones(group_ids.size, dtype=bool)
    if group_ids.size:
        new_group[1:] = sorted_groups[1:] != sorted_groups[:-1]
    run_start = np.maximum.accumulate(
        np.where(new_group, np.arange(group_ids.size), 0)
    )
    ranks = np.empty(group_ids.size, dtype=np.int64)
    ranks[order] = np.arange(group_ids.size) - run_start
    return ranks

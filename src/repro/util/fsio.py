"""Atomic text-file writes (write-temp-then-``os.replace``).

The artifact cache established the rule: a reader must only ever observe
an absent or a *complete* file, never a truncated one from an
interrupted writer.  This helper applies the same temp-file +
``os.replace`` pattern to text payloads — JSON recipes
(:func:`repro.io.save_config`) and the trace sinks (:mod:`repro.obs`).
"""

from __future__ import annotations

import os
import tempfile
from pathlib import Path

__all__ = ["write_text_atomic"]


def write_text_atomic(path: str | Path, text: str) -> None:
    """Write ``text`` to ``path`` atomically.

    The temp file lives in the destination directory so the final
    ``os.replace`` never crosses a filesystem boundary; on any failure
    the temp file is removed and the destination is untouched.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(
        dir=path.parent, prefix=path.name + ".", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "w") as fh:
            fh.write(text)
        os.replace(tmp, path)
    except BaseException:
        try:
            os.unlink(tmp)
        except OSError:
            pass
        raise
